//! Sharded serving: N shard domains, each owning a full [`Database`].
//!
//! [`ShardedDatabase::partition`] splits a prototype database's base
//! relations across N shards by a declared
//! [`spacetime_storage::ShardSpec`] (the same fixed-seed router that
//! places tuples into storage shards), then rebuilds every engine's
//! materialized views *per shard* from the shard's own base data. Each
//! shard is a complete, independently-consistent [`Database`]: its
//! engines, assertions, and commit protocol are untouched — sharding
//! composes with everything below it.
//!
//! **Shard-locality contract.** Partitioned serving is sound for view
//! sets whose joins and groupings are keyed by the declared shard keys
//! (e.g. every Emp/Dept view here joins or groups on `DName`, the shard
//! key of both relations). Then each view's global contents are exactly
//! the disjoint union of the per-shard contents — matching tuples always
//! co-locate, and a per-table delta routed by [`Delta::split_by`] reaches
//! every shard whose views it affects. The property tests cross-check the
//! contract by comparing the shard union against an unsharded control.
//!
//! The admission side — shard footprints, concurrent dispatch, the
//! cross-shard commit protocol — lives in [`crate::sched`].

use std::sync::{Arc, Mutex, MutexGuard};

use spacetime_delta::Delta;
use spacetime_storage::{Bag, ShardSpec};

use crate::database::Database;
use crate::pipeline::ExecutionMode;
use crate::{IvmError, IvmResult};

/// A database partitioned into shard domains.
pub struct ShardedDatabase {
    spec: ShardSpec,
    /// One full database per shard. The mutexes are an ownership
    /// mechanism, not a contention point: the scheduler only dispatches
    /// transactions with *disjoint* shard footprints concurrently, so a
    /// lock is always free when a task takes it. Keeping shards in
    /// `Arc<Mutex<…>>` cells (instead of moving them into pool tasks)
    /// also means a panic that fires before or during a task — e.g. the
    /// `ivm::pool_dispatch` failpoint, which destroys the task closure's
    /// captures — can never destroy a shard.
    shards: Vec<Arc<Mutex<Database>>>,
}

impl ShardedDatabase {
    /// Partition `template` into `n_shards` domains.
    ///
    /// Every *base* relation of the template must have a declared shard
    /// key. Per shard: the template is cloned (cheap — the catalog is
    /// `Arc`-backed), each base relation is reloaded with only the tuples
    /// routing to that shard, and every engine's materialized tables
    /// (root views and auxiliaries alike) are recomputed from the shard's
    /// base data — the same recompute the verification oracle uses, so a
    /// fresh shard starts provably consistent.
    ///
    /// Shards are pinned to [`ExecutionMode::Sequential`]: concurrency in
    /// the serving layer comes from running *shards* in parallel, and a
    /// shard that dispatched its own sub-tasks onto the scheduler's pool
    /// could deadlock it (workers blocking on workers). The sequential
    /// in-place commit is also the fastest single-stream path.
    pub fn partition(
        template: &Database,
        spec: ShardSpec,
        n_shards: usize,
    ) -> IvmResult<ShardedDatabase> {
        if n_shards == 0 {
            return Err(IvmError::Unsupported("cannot partition into 0 shards".into()));
        }
        // Validate the spec against the template before cloning anything:
        // every base relation declared, every declared table present with
        // key columns in range.
        for (name, table) in template.catalog.iter() {
            if table.is_base && spec.key_cols(name).is_none() {
                return Err(IvmError::Unsupported(format!(
                    "base relation `{name}` has no declared shard key"
                )));
            }
        }
        for (name, cols) in spec.tables() {
            let table = template.catalog.table(name)?;
            let arity = table.schema().arity();
            if let Some(&bad) = cols.iter().find(|&&c| c >= arity) {
                return Err(IvmError::Unsupported(format!(
                    "shard-key column {bad} out of range for `{name}` (arity {arity})"
                )));
            }
        }
        let base_tables: Vec<String> = template
            .catalog
            .iter()
            .filter(|(_, t)| t.is_base)
            .map(|(n, _)| n.to_string())
            .collect();
        let mut shards = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let mut db = template.clone();
            db.set_execution_mode(ExecutionMode::Sequential);
            // Keep only this shard's slice of every base relation.
            for name in &base_tables {
                let mut local = Bag::new();
                {
                    let data = db.catalog.table(name)?.relation.data();
                    for (t, c) in data.iter() {
                        if spec.route(name, t, n_shards)? == s {
                            local.insert(t.clone(), c);
                        }
                    }
                }
                let table = db.catalog.table_mut(name)?;
                table.relation.load(local)?;
                table.analyze();
            }
            // Recompute every materialization from the shard's base data.
            let recomputes: Vec<(String, spacetime_algebra::ExprTree)> = db
                .engines()
                .iter()
                .flat_map(|e| {
                    e.materialized
                        .iter()
                        .map(|(&g, name)| (name.clone(), e.memo.extract_one(g)))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (name, tree) in recomputes {
                let contents = spacetime_algebra::eval_uncharged(&tree, &db.catalog)?;
                let table = db.catalog.table_mut(&name)?;
                table.relation.load(contents)?;
                table.analyze();
            }
            shards.push(Arc::new(Mutex::new(db)));
        }
        Ok(ShardedDatabase { spec, shards })
    }

    /// Reassemble a sharded database from recovered shard cells (crash
    /// recovery restores each shard independently; see
    /// `crate::durability`).
    #[cfg(feature = "durability")]
    pub(crate) fn from_parts(
        spec: ShardSpec,
        shards: Vec<Arc<Mutex<Database>>>,
    ) -> ShardedDatabase {
        ShardedDatabase { spec, shards }
    }

    /// The shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The declared shard keys.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Lock shard `i` for direct inspection or mutation. Poison-tolerant:
    /// a panic contained by a previous transaction never bricks a shard
    /// (its commit protocol already restored pre-transaction state).
    pub fn shard(&self, i: usize) -> MutexGuard<'_, Database> {
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The shard cells (for the scheduler's task captures).
    pub(crate) fn cells(&self) -> &[Arc<Mutex<Database>>] {
        &self.shards
    }

    /// Route one table's delta across the shards: the non-empty
    /// sub-deltas in ascending shard order. A modification whose old and
    /// new tuples route to different shards degrades to a cross-shard
    /// delete+insert pair (see [`Delta::split_by`]).
    pub fn route_delta(&self, table: &str, delta: &Delta) -> IvmResult<Vec<(usize, Delta)>> {
        let n = self.shards.len();
        let parts = delta.split_by(n, |t| self.spec.route(table, t, n))?;
        Ok(parts
            .into_iter()
            .enumerate()
            .filter(|(_, d)| !d.is_empty())
            .collect())
    }

    /// The union of a table's contents across all shards (tests and
    /// cross-checks against an unsharded control).
    pub fn union_table(&self, name: &str) -> IvmResult<Bag> {
        let mut out = Bag::new();
        for cell in &self.shards {
            let db = cell.lock().unwrap_or_else(|e| e.into_inner());
            for (t, c) in db.catalog.table(name)?.relation.data().iter() {
                out.insert(t.clone(), c);
            }
        }
        Ok(out)
    }

    /// Run the recompute oracle on every shard; returns all mismatches.
    pub fn verify_all_shards(&self) -> IvmResult<Vec<crate::verify::Mismatch>> {
        let mut out = Vec::new();
        for cell in &self.shards {
            let db = cell.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(crate::verify::verify_all_views(&db)?);
        }
        Ok(out)
    }

    /// Set the propagation data plane on every shard.
    pub fn set_propagation_mode(&mut self, mode: crate::engine::PropagationMode) {
        for cell in &self.shards {
            cell.lock().unwrap_or_else(|e| e.into_inner()).set_propagation_mode(mode);
        }
    }

    /// Enable or disable propagation-trace recording on every shard. The
    /// scheduler assembles the per-shard transaction traces into
    /// cross-shard spans (see [`crate::sched::SchedOutcome::traces`]).
    pub fn set_tracing(&mut self, on: bool) {
        for cell in &self.shards {
            cell.lock().unwrap_or_else(|e| e.into_inner()).set_tracing(on);
        }
    }

    /// Whether trace recording is enabled (true iff enabled on shard 0;
    /// [`ShardedDatabase::set_tracing`] keeps all shards in lockstep).
    pub fn tracing(&self) -> bool {
        self.shards
            .first()
            .map(|c| c.lock().unwrap_or_else(|e| e.into_inner()).tracing())
            .unwrap_or(false)
    }
}

//! The maintenance engine: materialize a chosen view set and keep it
//! incrementally maintained under base-table deltas.
//!
//! The engine executes the paper's §3.2 propagation model: for each updated
//! base relation it follows a pre-chosen (cheapest) update track, computes
//! each affected node's delta with the `spacetime-delta` rules — posing
//! queries through [`QueryExec`] so lookups hit materialized views exactly
//! where the optimizer assumed — and finally applies the deltas to every
//! materialized relation, charging the §3.6 update costs.
//!
//! I/O is reported per bucket ([`UpdateReport`]) so callers can reproduce
//! the paper's accounting, which excludes base-relation and top-level-view
//! updates.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use spacetime_algebra::{ExprNode, ExprTree, FusedProgram, OpKind};
use spacetime_cost::{CostCtx, PageIoCostModel, TransactionType};
use spacetime_delta::{apply_to_relation, Delta, InputAccess};
use spacetime_memo::{GroupId, Memo, OpId};
use spacetime_optimizer::tracks::UpdateTrack;
use spacetime_optimizer::{EvalConfig, ViewSet};
use spacetime_storage::{Bag, Catalog, IoMeter, StorageResult, Table, Value};

use spacetime_obs::{self as obs, names as metric, TraceNode};

use crate::pipeline::{ChainFingerprint, SharedDeltaCache};
use crate::qexec::{filter_binding, PlanCache, QueryExec};
use crate::trace::{GroupProbe, GroupRec, QueryRec};
use crate::{IvmError, IvmResult};

/// Which data plane [`IvmEngine::plan_update`] uses to answer the posed
/// queries of delta propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// One posed query at a time, plans re-costed per key, self-rows found
    /// by filtering the whole materialization — the pre-batching data
    /// plane, kept as the measurable baseline.
    PerKey,
    /// Each delta's distinct keys are collected up front and answered by
    /// one batched query per (child, columns), with plan choices cached
    /// across updates and self-maintenance reads answered by index probes.
    /// Produces bit-identical deltas and charges bit-identical I/O to
    /// [`PropagationMode::PerKey`] — batching changes wall-clock only.
    #[default]
    Batched,
    /// [`PropagationMode::Batched`] planning plus fused chain kernels:
    /// each access-free `Select`/`Project` chain executes as a compiled
    /// [`spacetime_algebra::FusedProgram`] streaming the base delta
    /// through every stage in one pass, with interior chain groups
    /// skipped entirely (their deltas exist only to feed the next chain
    /// op, which the kernel fuses away). Chains pose no queries and
    /// charge no I/O in any mode, so deltas, reports, and view contents
    /// stay bit-identical to [`PropagationMode::Batched`]. With tracing
    /// on, the engine falls back to per-step propagation so traces keep
    /// their one-span-per-group structure.
    Fused,
}

/// Per-engine state the propagation hot path reuses across updates, so a
/// stream of transactions does zero per-update setup: per-table topo
/// orders and leaf groups (computed once at build), and the runtime plan
/// cache (valid until statistics change, which only `analyze()` does).
#[derive(Debug, Default, Clone)]
struct PropagationCtx {
    /// Children-first order of each table's track groups.
    topo: BTreeMap<String, Vec<GroupId>>,
    /// The leaf group scanning each table.
    leaves: BTreeMap<String, GroupId>,
    /// The same groups sliced into topological levels (per table): every
    /// group's delta depends only on earlier levels' deltas plus
    /// pre-update state, so groups *within* a level may be propagated
    /// concurrently.
    levels: BTreeMap<String, Vec<Vec<GroupId>>>,
    /// Access-free chain fingerprints per (table, group): the op chain
    /// from the base scan through `Select`/`Project` steps only. Keys of
    /// the per-transaction cross-engine shared-delta cache.
    chains: BTreeMap<String, BTreeMap<GroupId, ChainFingerprint>>,
    /// The same chains compiled into fused streaming kernels, executed by
    /// [`PropagationMode::Fused`] straight off the base delta.
    programs: BTreeMap<String, BTreeMap<GroupId, Arc<FusedProgram>>>,
    /// Chain groups whose deltas are still *needed* under fusion: those
    /// that are materialized, or feed a non-chain op. Interior chain
    /// groups (everything else) are skipped by the fused path — their
    /// deltas existed only to carry data to the next chain stage.
    needed: BTreeMap<String, BTreeSet<GroupId>>,
    /// Cached runtime plan decisions (used by the batched mode).
    plans: PlanCache,
    /// Lazily-built per-op expression nodes handed to `delta::propagate`
    /// — pure functions of the (immutable) memo, cached so propagation
    /// does not re-clone op/schema trees on every update.
    nodes: NodeCache,
}

/// Interior-mutable `OpId -> Arc<ExprNode>` cache (see
/// [`PropagationCtx::nodes`]).
#[derive(Debug, Default)]
struct NodeCache(std::sync::Mutex<BTreeMap<OpId, Arc<ExprNode>>>);

impl Clone for NodeCache {
    fn clone(&self) -> Self {
        NodeCache(std::sync::Mutex::new(
            self.0.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        ))
    }
}

impl NodeCache {
    /// The detached single-op node for `op` (children stripped; the
    /// propagation rules read only the op and the output schema).
    fn node(&self, op: OpId, g: GroupId, memo: &Memo) -> Arc<ExprNode> {
        let mut cache = self.0.lock().unwrap_or_else(|e| e.into_inner());
        cache
            .entry(op)
            .or_insert_with(|| {
                Arc::new(ExprNode {
                    op: memo.op(op).op.clone(),
                    children: vec![],
                    schema: memo.schema(g).clone(),
                })
            })
            .clone()
    }
}

/// Per-bucket I/O accounting for one propagated update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// I/O spent answering the posed queries (delta computation).
    pub query_io: IoMeter,
    /// I/O spent applying deltas to *additional* materialized views.
    pub aux_io: IoMeter,
    /// I/O spent applying the delta to the top-level view.
    pub root_io: IoMeter,
    /// I/O spent applying the delta to the base relation.
    pub base_io: IoMeter,
    /// Number of queries posed during propagation (§2.2). Like the I/O
    /// buckets, this must be independent of the propagation mode and of
    /// the execution mode — a batched `matching_all` over k keys counts k.
    pub queries_posed: u64,
}

impl UpdateReport {
    /// The §3.6 metric: query cost + additional-view maintenance, with
    /// base-relation and top-level-view updates excluded ("We do not count
    /// the cost of updating the database relations, or the top-level view
    /// ProblemDept").
    pub fn paper_cost(&self) -> u64 {
        self.query_io.total() + self.aux_io.total()
    }

    /// Everything, including root and base updates.
    pub fn total(&self) -> u64 {
        self.paper_cost() + self.root_io.total() + self.base_io.total()
    }

    /// Merge another report into this one. Sound only when the two
    /// reports account *disjoint* work: the planning report of a
    /// [`PlannedUpdate`] and the apply-phase report of
    /// [`IvmEngine::commit_update`] each carry their own buckets, so
    /// merging them counts every page exactly once.
    pub fn merge(&mut self, other: &UpdateReport) {
        for (a, b) in [
            (&mut self.query_io, &other.query_io),
            (&mut self.aux_io, &other.aux_io),
            (&mut self.root_io, &other.root_io),
            (&mut self.base_io, &other.base_io),
        ] {
            a.index_page_reads += b.index_page_reads;
            a.index_page_writes += b.index_page_writes;
            a.data_page_reads += b.data_page_reads;
            a.data_page_writes += b.data_page_writes;
        }
        self.queries_posed += other.queries_posed;
    }
}

/// A planned (not yet applied) update: the deltas for every materialized
/// node plus the query I/O already spent computing them.
#[derive(Debug, Clone)]
pub struct PlannedUpdate {
    /// The updated base table.
    pub table: String,
    /// Deltas per materialized group (in application order).
    pub view_deltas: Vec<(GroupId, Delta)>,
    /// Report with `query_io` filled in.
    pub report: UpdateReport,
    /// The propagation trace, when the plan was made with
    /// [`PlanOptions::trace`] on (and the table has a track).
    pub trace: Option<TraceNode>,
}

impl PlannedUpdate {
    /// The root view's delta, if the root is affected.
    pub fn root_delta(&self, root: GroupId) -> Option<&Delta> {
        self.view_deltas
            .iter()
            .find(|(g, _)| *g == root)
            .map(|(_, d)| d)
    }
}

/// Options for [`IvmEngine::plan_update_with`]. The execution knobs are
/// wall-clock optimizations only: they must not change the planned deltas,
/// the report, or the posed-query count.
#[derive(Default)]
pub struct PlanOptions<'s> {
    /// Propagate same-level track groups on scoped threads.
    pub level_parallel: bool,
    /// Per-transaction cross-engine memo of access-free prefix deltas.
    pub shared: Option<&'s SharedDeltaCache>,
    /// Record a propagation trace into [`PlannedUpdate::trace`]. Unlike
    /// the other knobs this one does extra work (probes + `Instant`
    /// reads), but never changes the planned deltas or the report.
    pub trace: bool,
}

/// One maintained view (plus its chosen auxiliary materializations).
///
/// `Clone` exists so the database can hold engines behind `Arc` and
/// copy-on-write them for configuration changes; a clone snapshots the
/// plan cache's current decisions.
#[derive(Debug, Clone)]
pub struct IvmEngine {
    /// The view's name (backing table of the root).
    pub name: String,
    /// The expression DAG.
    pub memo: Memo,
    /// Primary root group (the view itself).
    pub root: GroupId,
    /// All root groups (one per view when several views share this
    /// engine's DAG, §6's multi-rooted case; contains `root`).
    pub roots: std::collections::BTreeSet<GroupId>,
    /// The materialized view set (root included).
    pub view_set: ViewSet,
    /// Materialized group → backing table.
    pub materialized: BTreeMap<GroupId, String>,
    /// The original creation trees, `(view name, tree)` per root, in
    /// creation order — the durable rebuild recipe. Replaying them
    /// through `Memo::insert_tree` + `explore` reproduces this memo
    /// bit-identically (exploration is deterministic structural
    /// rewriting), which is how recovery re-derives group ids without
    /// trusting them from disk. Empty for engines built directly via
    /// [`IvmEngine::build`] (checkpointing requires database-created
    /// engines).
    pub creation: Vec<(String, ExprTree)>,
    /// Cost model used for runtime plan choices.
    pub model: PageIoCostModel,
    /// Chosen update track per base table.
    tracks: BTreeMap<String, UpdateTrack>,
    /// Key-elimination result per table, per aggregate op on that track
    /// (nested so the hot path can look up with a borrowed table name).
    complete: BTreeMap<String, BTreeMap<OpId, bool>>,
    /// Reused propagation state (topo orders, leaf groups, plan cache).
    prop_ctx: PropagationCtx,
    /// Which data plane answers posed queries.
    mode: PropagationMode,
}

impl IvmEngine {
    /// Materialize `view_set` (the root plus auxiliaries) into the
    /// catalog, choose per-table update tracks, and return the engine.
    /// Initial materialization is a full (uncharged) computation.
    pub fn build(
        name: impl Into<String>,
        memo: Memo,
        root: GroupId,
        view_set: ViewSet,
        catalog: &mut Catalog,
    ) -> IvmResult<IvmEngine> {
        let name = name.into();
        Self::build_with_roots(vec![(name, root)], memo, view_set, catalog)
    }

    /// Multi-rooted variant (§6): several views share one DAG and one set
    /// of auxiliary materializations. `named_roots` pairs each view's
    /// backing-table name with its root group; the first entry is the
    /// primary (it names the auxiliary tables).
    pub fn build_with_roots(
        named_roots: Vec<(String, GroupId)>,
        memo: Memo,
        view_set: ViewSet,
        catalog: &mut Catalog,
    ) -> IvmResult<IvmEngine> {
        Self::build_inner(named_roots, memo, view_set, catalog, None)
    }

    /// Recovery-time variant: attach to tables that already exist in
    /// the catalog (restored from a checkpoint with contents, indexes,
    /// and statistics) instead of creating and computing them. `pins`
    /// maps every view-set group to its backing-table name; the normal
    /// create/evaluate/load/analyze step is skipped wholesale, while
    /// track choice and propagation state are computed fresh against
    /// the restored statistics.
    #[cfg(feature = "durability")]
    pub(crate) fn rebuild_pinned(
        named_roots: Vec<(String, GroupId)>,
        memo: Memo,
        view_set: ViewSet,
        catalog: &mut Catalog,
        pins: &BTreeMap<GroupId, String>,
    ) -> IvmResult<IvmEngine> {
        Self::build_inner(named_roots, memo, view_set, catalog, Some(pins))
    }

    fn build_inner(
        named_roots: Vec<(String, GroupId)>,
        memo: Memo,
        view_set: ViewSet,
        catalog: &mut Catalog,
        pins: Option<&BTreeMap<GroupId, String>>,
    ) -> IvmResult<IvmEngine> {
        assert!(!named_roots.is_empty(), "at least one root view");
        let named_roots: Vec<(String, GroupId)> = named_roots
            .into_iter()
            .map(|(n, g)| (n, memo.find(g)))
            .collect();
        let name = named_roots[0].0.clone();
        let root = named_roots[0].1;
        let roots: std::collections::BTreeSet<GroupId> =
            named_roots.iter().map(|&(_, g)| g).collect();
        let view_set: ViewSet = view_set
            .iter()
            .map(|&g| memo.find(g))
            .chain(roots.iter().copied())
            .collect();
        let model = PageIoCostModel::default();

        // Materialize every marked group. Queryable column sets for the
        // whole memo are collected in one pass, instead of re-walking
        // every memo op per materialized group.
        let index_map = needed_indexes_map(&memo);
        let mut materialized = BTreeMap::new();
        for &g in &view_set {
            // Indexes: one per column set this node can be queried on.
            let mut index_sets = index_map.get(&g).cloned().unwrap_or_default();
            index_sets.sort();
            index_sets.dedup();
            if let Some(pins) = pins {
                // Attach mode: the backing table was already restored
                // (contents, indexes, stats); just record the binding.
                // Index creation is idempotent, so filling any gap the
                // checkpoint might have is a no-op in the common case.
                let table_name = pins.get(&g).cloned().ok_or_else(|| {
                    IvmError::Internal(format!("no pinned table for group {}", g.0))
                })?;
                let t = catalog.table_mut(&table_name)?;
                for cols in index_sets {
                    if !cols.is_empty() {
                        t.relation.create_index(cols)?;
                    }
                }
                materialized.insert(g, table_name);
                continue;
            }
            let table_name = if let Some((n, _)) = named_roots.iter().find(|&&(_, r)| r == g) {
                n.clone()
            } else {
                format!("{name}__aux_N{}", g.0)
            };
            let schema = memo.schema(g).requalify(&table_name);
            catalog.create_materialized(&table_name, schema)?;
            let tree = memo.extract_one(g);
            let contents = spacetime_algebra::eval_uncharged(&tree, catalog)?;
            {
                let t = catalog.table_mut(&table_name)?;
                for cols in index_sets {
                    if !cols.is_empty() {
                        t.relation.create_index(cols)?;
                    }
                }
                t.relation.load(contents)?;
                t.analyze();
            }
            materialized.insert(g, table_name);
        }

        // Choose the cheapest track per base table (unit-modify probe
        // transactions; the optimizer's evaluation machinery picks the
        // same tracks its cost tables did).
        let mut tracks = BTreeMap::new();
        let mut complete: BTreeMap<String, BTreeMap<OpId, bool>> = BTreeMap::new();
        let mut leaf_tables: Vec<String> = Vec::new();
        for &r in &roots {
            for t in self_leaf_tables(&memo, r) {
                if !leaf_tables.contains(&t) {
                    leaf_tables.push(t);
                }
            }
        }
        let config = EvalConfig::default();
        let mut ctx = CostCtx::new(&memo, catalog, &model);
        for table in &leaf_tables {
            let txn = TransactionType::modify(format!(">{table}"), table.clone(), 1.0);
            let root_vec: Vec<GroupId> = roots.iter().copied().collect();
            let eval = spacetime_optimizer::evaluate_multi(
                &mut ctx,
                catalog,
                &root_vec,
                &view_set,
                &[txn],
                &config,
            );
            let Some(txn_eval) = eval.per_txn.first() else {
                continue;
            };
            let Some(best) = txn_eval.tracks.get(txn_eval.best_track) else {
                continue;
            };
            let track = best.track.clone();
            // Precompute key-elimination per aggregate op on this track.
            for (&g, &op) in &track.choices {
                if let OpKind::Aggregate { group_by, .. } = &memo.op(op).op {
                    let child = memo.op_children(op)[0];
                    let ok = spacetime_optimizer::delta_group_complete(
                        &memo, catalog, &track, child, group_by, table,
                    );
                    complete.entry(table.clone()).or_default().insert(op, ok);
                }
                let _ = g;
            }
            tracks.insert(table.clone(), track);
        }

        // Per-table propagation state, computed once instead of on every
        // update: topo order, leaf group, topological levels (for the
        // parallel pipeline), and access-free chain fingerprints (for the
        // cross-engine shared-delta cache).
        let mut prop_ctx = PropagationCtx::default();
        for (table, track) in &tracks {
            let order = topo_order(&memo, track);
            if let Some(leaf) = roots.iter().find_map(|&r| leaf_group(&memo, r, table)) {
                let (levels, chains) = level_plan(&memo, track, &order, leaf, table);
                // Compile each access-free chain into a fused kernel
                // (skipping the leading `Scan`), and record which chain
                // groups still need their delta under fusion: those that
                // are materialized or feed a non-chain track op.
                let programs: BTreeMap<GroupId, Arc<FusedProgram>> = chains
                    .iter()
                    .filter_map(|(g, fp)| {
                        FusedProgram::compile(fp.iter().skip(1)).map(|p| (*g, Arc::new(p)))
                    })
                    .collect();
                let mut needed: BTreeSet<GroupId> = programs
                    .keys()
                    .filter(|g| materialized.contains_key(g))
                    .copied()
                    .collect();
                for &h in &order {
                    let Some(&op) = track.choices.get(&h) else {
                        continue;
                    };
                    if programs.contains_key(&h) {
                        continue;
                    }
                    for c in memo.op_children(op) {
                        if programs.contains_key(&c) {
                            needed.insert(c);
                        }
                    }
                }
                prop_ctx.leaves.insert(table.clone(), leaf);
                prop_ctx.levels.insert(table.clone(), levels);
                prop_ctx.chains.insert(table.clone(), chains);
                prop_ctx.programs.insert(table.clone(), programs);
                prop_ctx.needed.insert(table.clone(), needed);
            }
            prop_ctx.topo.insert(table.clone(), order);
        }

        Ok(IvmEngine {
            name,
            memo,
            root,
            roots,
            view_set,
            materialized,
            creation: Vec::new(),
            model,
            tracks,
            complete,
            prop_ctx,
            mode: PropagationMode::default(),
        })
    }

    /// Switch the data plane answering posed queries. Both modes produce
    /// identical deltas and charge identical I/O; `PerKey` exists as the
    /// benchmark baseline.
    pub fn set_propagation_mode(&mut self, mode: PropagationMode) {
        self.mode = mode;
    }

    /// The active propagation mode.
    pub fn propagation_mode(&self) -> PropagationMode {
        self.mode
    }

    /// Whether this engine's DAG reads `table`.
    pub fn depends_on(&self, table: &str) -> bool {
        self.tracks.contains_key(table)
    }

    /// Phase 1: propagate a base delta along the chosen track, computing
    /// the delta of every affected materialized node. Reads only
    /// *pre-update* state; applies nothing.
    pub fn plan_update(
        &self,
        catalog: &Catalog,
        table: &str,
        base_delta: &Delta,
    ) -> IvmResult<PlannedUpdate> {
        self.plan_update_with(catalog, table, base_delta, &PlanOptions::default())
    }

    /// [`IvmEngine::plan_update`] with pipeline options: level-parallel
    /// track propagation and/or a cross-engine shared-delta cache. Both
    /// options are wall-clock only — the returned plan (deltas, report,
    /// posed-query count) is bit-identical to the default path.
    pub fn plan_update_with(
        &self,
        catalog: &Catalog,
        table: &str,
        base_delta: &Delta,
        opts: &PlanOptions<'_>,
    ) -> IvmResult<PlannedUpdate> {
        let mut report = UpdateReport::default();
        let Some(track) = self.tracks.get(table) else {
            return Ok(PlannedUpdate {
                table: table.to_string(),
                view_deltas: Vec::new(),
                report,
                trace: None,
            });
        };
        obs::counter_add(metric::TRACK_PROPAGATIONS, 1);
        let batched = matches!(
            self.mode,
            PropagationMode::Batched | PropagationMode::Fused
        );
        let mut exec = QueryExec::new(&self.memo, catalog, &self.materialized);
        if batched {
            exec = exec.with_plans(&self.prop_ctx.plans);
        }
        // Fused chain kernels: active only without tracing (traces keep
        // their one-span-per-group structure on the per-step path).
        // Chains pose no queries and charge no I/O in any mode, so the
        // plan, report, and view deltas stay bit-identical.
        let fused = (self.mode == PropagationMode::Fused && !opts.trace)
            .then(|| self.prop_ctx.programs.get(table))
            .flatten();
        let fused_needed = fused.and_then(|_| self.prop_ctx.needed.get(table));

        // Topological order of the track's groups (children first) and the
        // table's leaf group, both computed once at build time.
        let order = self.prop_ctx.topo.get(table).ok_or_else(|| {
            IvmError::Internal(format!(
                "track for `{table}` has no topo order (must be computed at build)"
            ))
        })?;
        let leaf = self.prop_ctx.leaves.get(table).copied().ok_or_else(|| {
            IvmError::Unsupported(format!("table `{table}` not under view `{}`", self.name))
        })?;
        let chains = opts
            .shared
            .is_some()
            .then(|| self.prop_ctx.chains.get(table))
            .flatten();
        // Group deltas accumulate as owned values; the leaf seed stays a
        // borrow of the caller's base delta (never cloned into the map).
        let mut deltas: BTreeMap<GroupId, Cow<'_, Delta>> = BTreeMap::new();
        deltas.insert(leaf, Cow::Borrowed(base_delta));
        let mut recs: BTreeMap<GroupId, GroupRec> = BTreeMap::new();

        let levels = self.prop_ctx.levels.get(table);
        if let (true, Some(levels)) = (opts.level_parallel, levels) {
            // Level-parallel path: groups within a level only read earlier
            // levels' deltas (plus pre-update catalog state), so they can
            // propagate concurrently into per-group delta slots. Results
            // merge in level order, per-thread I/O meters sum into the
            // report — u64 addition is order-independent, so the counters
            // match the sequential path exactly.
            for level in levels {
                let mut work: Vec<(GroupId, OpId)> = Vec::with_capacity(level.len());
                for &g in level {
                    let Some(&op) = track.choices.get(&g) else {
                        continue;
                    };
                    if let Some(progs) = fused {
                        if let Some(prog) = progs.get(&g) {
                            // Fused chain group: cheap enough to run inline
                            // (no queries, no I/O) rather than spawn.
                            if fused_needed.is_some_and(|n| n.contains(&g)) {
                                let d = spacetime_delta::propagate_chain(prog, base_delta)?;
                                if !d.is_empty() {
                                    deltas.insert(g, Cow::Owned(d));
                                }
                            }
                            continue;
                        }
                    }
                    work.push((g, op));
                }
                if work.len() <= 1 {
                    let mut ctx = CostCtx::new(&self.memo, catalog, &self.model);
                    for &(g, op) in &work {
                        let mut posed = 0u64;
                        let mut probe = opts.trace.then(GroupProbe::default);
                        let t0 = opts.trace.then(std::time::Instant::now);
                        if let Some(d) = self.propagate_group(
                            catalog,
                            table,
                            g,
                            op,
                            &deltas,
                            &exec,
                            &mut ctx,
                            batched,
                            &mut report.query_io,
                            &mut posed,
                            opts.shared,
                            chains,
                            probe.as_mut(),
                        )? {
                            if let Some(probe) = probe {
                                recs.insert(
                                    g,
                                    GroupRec {
                                        probe,
                                        delta_out: d.size(),
                                        posed,
                                        wall_ns: t0
                                            .map(|t| t.elapsed().as_nanos() as u64)
                                            .unwrap_or(0),
                                    },
                                );
                            }
                            deltas.insert(g, Cow::Owned(d));
                        }
                        report.queries_posed += posed;
                    }
                    continue;
                }
                let exec_ref = &exec;
                let deltas_ref = &deltas;
                type GroupOutcome = (GroupId, Option<Delta>, IoMeter, u64, Option<GroupProbe>, u64);
                let results: Vec<IvmResult<GroupOutcome>> =
                    std::thread::scope(|s| {
                        let handles: Vec<_> = work
                            .iter()
                            .map(|&(g, op)| {
                                s.spawn(move || {
                                    let mut ctx =
                                        CostCtx::new(&self.memo, catalog, &self.model);
                                    let mut io = IoMeter::new();
                                    let mut posed = 0u64;
                                    let mut probe = opts.trace.then(GroupProbe::default);
                                    let t0 = opts.trace.then(std::time::Instant::now);
                                    let d = self.propagate_group(
                                        catalog,
                                        table,
                                        g,
                                        op,
                                        deltas_ref,
                                        exec_ref,
                                        &mut ctx,
                                        batched,
                                        &mut io,
                                        &mut posed,
                                        opts.shared,
                                        chains,
                                        probe.as_mut(),
                                    )?;
                                    let wall =
                                        t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                                    Ok((g, d, io, posed, probe, wall))
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| {
                                h.join().unwrap_or_else(|p| {
                                    Err(IvmError::TaskPanicked {
                                        message: crate::pipeline::panic_message(p.as_ref()),
                                    })
                                })
                            })
                            .collect()
                    });
                for r in results {
                    let (g, d, io, posed, probe, wall_ns) = r?;
                    add_io(&mut report.query_io, &io);
                    report.queries_posed += posed;
                    if let Some(d) = d {
                        if let Some(probe) = probe {
                            recs.insert(
                                g,
                                GroupRec {
                                    probe,
                                    delta_out: d.size(),
                                    posed,
                                    wall_ns,
                                },
                            );
                        }
                        deltas.insert(g, Cow::Owned(d));
                    }
                }
            }
        } else {
            let mut ctx = CostCtx::new(&self.memo, catalog, &self.model);
            for &g in order {
                let Some(&op) = track.choices.get(&g) else {
                    continue;
                };
                if let Some(progs) = fused {
                    if let Some(prog) = progs.get(&g) {
                        // Fused chain group: run the whole compiled chain
                        // off the base delta if anything downstream needs
                        // this group's delta; skip it entirely otherwise.
                        if fused_needed.is_some_and(|n| n.contains(&g)) {
                            let d = spacetime_delta::propagate_chain(prog, base_delta)?;
                            if !d.is_empty() {
                                deltas.insert(g, Cow::Owned(d));
                            }
                        }
                        continue;
                    }
                }
                let mut posed = 0u64;
                let mut probe = opts.trace.then(GroupProbe::default);
                let t0 = opts.trace.then(std::time::Instant::now);
                if let Some(d) = self.propagate_group(
                    catalog,
                    table,
                    g,
                    op,
                    &deltas,
                    &exec,
                    &mut ctx,
                    batched,
                    &mut report.query_io,
                    &mut posed,
                    opts.shared,
                    chains,
                    probe.as_mut(),
                )? {
                    if let Some(probe) = probe {
                        recs.insert(
                            g,
                            GroupRec {
                                probe,
                                delta_out: d.size(),
                                posed,
                                wall_ns: t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                            },
                        );
                    }
                    deltas.insert(g, Cow::Owned(d));
                }
                report.queries_posed += posed;
            }
        }

        // All delta-carrying groups minus the leaf's seed entry. (Read
        // before view deltas are moved out of the map below.)
        obs::counter_add(
            metric::TRACK_GROUPS_PROPAGATED,
            deltas.len().saturating_sub(1) as u64,
        );
        // Deltas for materialized nodes, children before parents (same
        // topo order), so commit order never violates referential
        // assumptions. Moved out of the map, not cloned — each group
        // appears once in `order`.
        let view_deltas: Vec<(GroupId, Delta)> = order
            .iter()
            .filter(|g| self.materialized.contains_key(g))
            .filter_map(|&g| deltas.remove(&g).map(|d| (g, d.into_owned())))
            .filter(|(_, d)| !d.is_empty())
            .collect();
        obs::counter_add(metric::QUERIES_POSED, report.queries_posed);
        let trace = opts.trace.then(|| {
            self.plan_trace(catalog, table, base_delta, leaf, order, levels, &recs)
        });
        Ok(PlannedUpdate {
            table: table.to_string(),
            view_deltas,
            report,
            trace,
        })
    }

    /// Assemble the propagation trace from the per-group recordings, in
    /// the build-time level plan's order (mode-independent, so Sequential
    /// and Parallel runs produce structurally identical trees).
    #[allow(clippy::too_many_arguments)]
    fn plan_trace(
        &self,
        catalog: &Catalog,
        table: &str,
        base_delta: &Delta,
        leaf: GroupId,
        order: &[GroupId],
        levels: Option<&Vec<Vec<GroupId>>>,
        recs: &BTreeMap<GroupId, GroupRec>,
    ) -> TraceNode {
        let track_path: Vec<String> = order.iter().map(|g| format!("N{}", g.0)).collect();
        let mut root = TraceNode::new(format!("propagate {}", self.name))
            .with_field("table", table)
            .with_field("mode", format!("{:?}", self.mode))
            .with_field("track", track_path.join("→"));

        let mut l0 = TraceNode::new("level 0");
        l0.push_child(
            TraceNode::new(format!("N{} Scan", leaf.0))
                .with_field("op", format!("Scan({table})"))
                .with_field("Δout", base_delta.size()),
        );
        root.push_child(l0);

        let empty: Vec<Vec<GroupId>> = Vec::new();
        for (i, level) in levels.unwrap_or(&empty).iter().enumerate() {
            let members: Vec<(GroupId, &GroupRec)> = level
                .iter()
                .filter_map(|&g| recs.get(&g).map(|r| (g, r)))
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut ln = TraceNode::new(format!("level {}", i + 1));
            ln.wall_ns = Some(members.iter().map(|(_, r)| r.wall_ns).sum());
            for (g, rec) in members {
                let Some(&op) = self.tracks.get(table).and_then(|t| t.choices.get(&g)) else {
                    continue;
                };
                let kind = &self.memo.op(op).op;
                let mut node = TraceNode::new(format!("N{} {}", g.0, kind_name(kind)))
                    .with_field("op", kind)
                    .with_field("Δin", rec.probe.delta_in)
                    .with_field("Δout", rec.delta_out)
                    .with_field("posed", rec.posed);
                if let Some(mv) = self.materialized.get(&g) {
                    node.push_field("mv", mv);
                }
                for q in &rec.probe.queries {
                    node.push_child(
                        TraceNode::new("query")
                            .with_field("child", format!("N{}", q.child.0))
                            .with_field("cols", format!("{:?}", q.cols))
                            .with_field("keys", q.keys)
                            .with_field("via", self.access_resolution(catalog, q.child, &q.cols)),
                    );
                }
                if rec.probe.cached {
                    node.push_note("shared-delta-cache hit");
                }
                node.wall_ns = Some(rec.wall_ns);
                ln.push_child(node);
            }
            root.push_child(ln);
        }
        root
    }

    /// How a posed query against `g` on `cols` resolves: an exact index
    /// probe on the backing table (possibly with permuted key columns), a
    /// scan/partition of it, or on-the-fly derivation when the group is
    /// not backed by a stored relation. A static property of the
    /// pre-update catalog — identical across execution modes.
    fn access_resolution(&self, catalog: &Catalog, g: GroupId, cols: &[usize]) -> String {
        let g = self.memo.find(g);
        let table = self.materialized.get(&g).cloned().or_else(|| {
            self.memo.is_leaf(g).then(|| {
                self.memo.group_ops(g).iter().find_map(|&op| {
                    match &self.memo.op(op).op {
                        OpKind::Scan { table } => Some(table.clone()),
                        _ => None,
                    }
                })
            })?
        });
        let Some(table) = table else {
            return "derived".to_string();
        };
        if cols.is_empty() {
            return format!("scan({table})");
        }
        match catalog
            .table(&table)
            .ok()
            .and_then(|t| t.relation.find_exact_index(cols))
        {
            Some((_, false)) => format!("index({table})"),
            Some((_, true)) => format!("index({table}) permuted"),
            None => format!("scan({table})"),
        }
    }

    /// Compute one group's output delta from its children's deltas (and
    /// the pre-update catalog). Returns `None` when no child carries a
    /// delta (the group is unaffected this transaction).
    #[allow(clippy::too_many_arguments)]
    fn propagate_group(
        &self,
        catalog: &Catalog,
        table: &str,
        g: GroupId,
        op: OpId,
        deltas: &BTreeMap<GroupId, Cow<'_, Delta>>,
        exec: &QueryExec<'_>,
        ctx: &mut CostCtx<'_>,
        batched: bool,
        io: &mut IoMeter,
        posed: &mut u64,
        shared: Option<&SharedDeltaCache>,
        chains: Option<&BTreeMap<GroupId, ChainFingerprint>>,
        mut probe: Option<&mut GroupProbe>,
    ) -> IvmResult<Option<Delta>> {
        let children = self.memo.op_children(op);
        // Exactly one child may carry a delta (sequential propagation;
        // a self-join of the updated table would put deltas on both).
        let carriers: Vec<usize> = children
            .iter()
            .enumerate()
            .filter(|(_, c)| deltas.get(c).is_some_and(|d| !d.is_empty()))
            .map(|(i, _)| i)
            .collect();
        if carriers.len() > 1 {
            return Err(IvmError::Unsupported(
                "propagation through a self-join of the updated relation".into(),
            ));
        }
        let Some(&delta_child) = carriers.first() else {
            return Ok(None);
        };
        let d_in: &Delta = deltas
            .get(&children[delta_child])
            .ok_or_else(|| {
                IvmError::Internal("carrier child lost its delta during propagation".into())
            })?
            .as_ref();
        if let Some(p) = probe.as_mut() {
            p.delta_in = d_in.size();
        }
        // Access-free prefix: reusable across engines within the
        // transaction. Select/Project propagation poses no queries and
        // charges no I/O in any mode, so a cache hit changes nothing in
        // the report — it only skips recomputation. (The trace stays
        // structurally identical too: a hit is recorded as a
        // non-structural note, and cacheable chains pose no queries.)
        let fp = chains.and_then(|m| m.get(&g));
        if let (Some(cache), Some(fp)) = (shared, fp) {
            if let Some(d) = cache.get(fp) {
                if let Some(p) = probe.as_mut() {
                    p.cached = true;
                }
                return Ok(Some(d));
            }
        }
        let node = self.prop_ctx.nodes.node(op, g, &self.memo);
        let self_mv = self
            .materialized
            .get(&g)
            .map(|t| catalog.table(t))
            .transpose()?;
        let complete = self
            .complete
            .get(table)
            .and_then(|per_op| per_op.get(&op))
            .copied()
            .unwrap_or(false);
        let mut access = EngineAccess {
            exec,
            ctx,
            children: &children,
            self_rel: self_mv.map(|t| &t.relation),
            complete,
            batched,
            io,
            posed,
            queries: probe.map(|p| &mut p.queries),
        };
        let d_out = spacetime_delta::propagate(&node, delta_child, d_in, &mut access)?;
        if let (Some(cache), Some(fp)) = (shared, fp) {
            cache.put(fp.clone(), d_out.clone());
        }
        Ok(Some(d_out))
    }

    /// Phase 2: apply a planned update's view deltas (the base relation is
    /// the caller's responsibility, since several engines may share it).
    ///
    /// Returns *only* the apply-phase I/O (`root_io`/`aux_io`). The
    /// planning-phase `query_io` stays in `planned.report`; the caller
    /// merges the two, so a plan's I/O is counted exactly once no matter
    /// how many engines' reports are combined.
    pub fn commit_update(
        &self,
        catalog: &mut Catalog,
        planned: &PlannedUpdate,
    ) -> IvmResult<UpdateReport> {
        let mut report = UpdateReport::default();
        for (g, delta) in &planned.view_deltas {
            let table = self.backing_table(g)?;
            let io = if self.roots.contains(g) {
                &mut report.root_io
            } else {
                &mut report.aux_io
            };
            let rel = &mut catalog.table_mut(table)?.relation;
            apply_to_relation(delta, rel, io)?;
        }
        Ok(report)
    }

    /// [`IvmEngine::commit_update`] against *staged* copies: each touched
    /// materialization is copied out of the (unmodified) catalog into
    /// `staged` on first touch, and every delta is applied to the staged
    /// copy. The catalog itself is never written — the caller swaps the
    /// staged tables in atomically once every engine (and the base delta)
    /// has staged successfully, which is what makes the sequential
    /// transaction path all-or-nothing.
    ///
    /// The `ivm::commit_view` failpoint fires before each view delta.
    pub fn commit_staged(
        &self,
        catalog: &Catalog,
        staged: &mut BTreeMap<String, Arc<Table>>,
        planned: &PlannedUpdate,
    ) -> IvmResult<UpdateReport> {
        let mut report = UpdateReport::default();
        for (g, delta) in &planned.view_deltas {
            spacetime_storage::fault::fire("ivm::commit_view")?;
            let table = self.backing_table(g)?;
            let io = if self.roots.contains(g) {
                &mut report.root_io
            } else {
                &mut report.aux_io
            };
            let t = match staged.entry(table.clone()) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(catalog.table_arc(table)?)
                }
            };
            let rel = &mut Arc::make_mut(t).relation;
            apply_to_relation(delta, rel, io)?;
        }
        Ok(report)
    }

    /// [`IvmEngine::commit_update`] with journaling — the sequential
    /// commit fast path. Deltas are applied to the live catalog tables
    /// **in place** (no staged copies: the catalog's `Arc`s are unshared
    /// in steady state, so `Arc::make_mut` mutates without copying a
    /// single shard), and every op is recorded in `undo` so the caller can
    /// roll the whole transaction back on any later failure.
    ///
    /// The `ivm::commit_view` failpoint fires before each view delta,
    /// exactly as on the staged paths.
    pub fn commit_in_place(
        &self,
        catalog: &mut Catalog,
        planned: &PlannedUpdate,
        undo: &mut spacetime_delta::UndoLog,
    ) -> IvmResult<UpdateReport> {
        let mut report = UpdateReport::default();
        for (g, delta) in &planned.view_deltas {
            spacetime_storage::fault::fire("ivm::commit_view")?;
            let table = self.backing_table(g)?;
            let io = if self.roots.contains(g) {
                &mut report.root_io
            } else {
                &mut report.aux_io
            };
            let rel = &mut catalog.table_mut(table)?.relation;
            spacetime_delta::apply_to_relation_undo(delta, rel, io, undo)?;
        }
        Ok(report)
    }

    /// [`IvmEngine::commit_update`] against tables detached from the
    /// catalog ([`Catalog::take_table`]) — the parallel commit path, where
    /// each engine's worker owns its (disjoint) materializations for the
    /// duration of the apply. Mutation is staged through `Arc::make_mut`
    /// copies, so on failure the caller still holds the untouched
    /// pre-commit `Arc`s and can reattach them.
    ///
    /// The `ivm::commit_view` failpoint fires before each view delta.
    pub fn commit_detached(
        &self,
        tables: &mut BTreeMap<String, Arc<Table>>,
        planned: &PlannedUpdate,
    ) -> IvmResult<UpdateReport> {
        let mut report = UpdateReport::default();
        for (g, delta) in &planned.view_deltas {
            spacetime_storage::fault::fire("ivm::commit_view")?;
            let table = self.backing_table(g)?;
            let io = if self.roots.contains(g) {
                &mut report.root_io
            } else {
                &mut report.aux_io
            };
            let t = tables.get_mut(table).ok_or_else(|| {
                spacetime_storage::StorageError::UnknownTable(table.clone())
            })?;
            let rel = &mut Arc::make_mut(t).relation;
            apply_to_relation(delta, rel, io)?;
        }
        Ok(report)
    }

    /// The backing table of a materialized group, as a typed error rather
    /// than a map-indexing panic (a plan can only reference groups this
    /// engine materialized; anything else is an internal invariant bug).
    fn backing_table(&self, g: &GroupId) -> IvmResult<&String> {
        self.materialized.get(g).ok_or_else(|| {
            IvmError::Internal(format!(
                "plan references group N{} which `{}` never materialized",
                g.0, self.name
            ))
        })
    }

    /// Names of every table this engine materialized (root views plus
    /// auxiliaries) — the set [`crate::Database::integrity_check`] expects
    /// to find attached in the catalog.
    pub fn materialized_tables(&self) -> impl Iterator<Item = &String> {
        self.materialized.values()
    }

    /// Convenience: plan + commit in one call (no assertion gating).
    /// Returns the full report: planning I/O merged with apply I/O.
    pub fn apply_update(
        &self,
        catalog: &mut Catalog,
        table: &str,
        base_delta: &Delta,
    ) -> IvmResult<UpdateReport> {
        let planned = self.plan_update(catalog, table, base_delta)?;
        let mut report = planned.report.clone();
        report.merge(&self.commit_update(catalog, &planned)?);
        Ok(report)
    }

    /// The root view's current contents.
    pub fn root_contents<'a>(&self, catalog: &'a Catalog) -> StorageResult<&'a Bag> {
        Ok(catalog.table(&self.name)?.relation.data())
    }
}

/// `InputAccess` over the engine: queries via [`QueryExec`] (charged),
/// self-rows from the node's own materialization (uncharged — the
/// subsequent update application pays for reading the tuple, per §3.6's
/// "reading, modifying and writing 1 tuple" arithmetic).
struct EngineAccess<'e, 'c, 'x> {
    exec: &'e QueryExec<'e>,
    ctx: &'e mut CostCtx<'c>,
    children: &'e [GroupId],
    self_rel: Option<&'e spacetime_storage::Relation>,
    complete: bool,
    batched: bool,
    io: &'x mut IoMeter,
    posed: &'x mut u64,
    /// When tracing, every posed query is also recorded here.
    queries: Option<&'x mut Vec<QueryRec>>,
}

impl InputAccess for EngineAccess<'_, '_, '_> {
    fn matching(&mut self, child: usize, cols: &[usize], key: &[Value]) -> StorageResult<Bag> {
        *self.posed += 1;
        if let Some(q) = self.queries.as_mut() {
            q.push(QueryRec {
                child: self.children[child],
                cols: cols.to_vec(),
                keys: 1,
            });
        }
        self.exec
            .query(self.children[child], cols, key, self.ctx, self.io)
    }

    fn matching_all(
        &mut self,
        child: usize,
        cols: &[usize],
        keys: &[Vec<Value>],
    ) -> StorageResult<BTreeMap<Vec<Value>, Bag>> {
        if self.batched {
            // One posed query per binding, same as the per-key path, so the
            // count is mode-independent (the *plans* differ, not the set of
            // posed queries — §2.2).
            *self.posed += keys.len() as u64;
            if let Some(q) = self.queries.as_mut() {
                // An empty batch poses nothing — don't trace a phantom query.
                if !keys.is_empty() {
                    q.push(QueryRec {
                        child: self.children[child],
                        cols: cols.to_vec(),
                        keys: keys.len() as u64,
                    });
                }
            }
            return self
                .exec
                .query_all(self.children[child], cols, keys, self.ctx, self.io);
        }
        // Per-key baseline: pose and plan each query individually.
        let mut out = BTreeMap::new();
        for key in keys {
            out.insert(key.clone(), self.matching(child, cols, key)?);
        }
        Ok(out)
    }

    fn self_rows(&mut self, cols: &[usize], key: &[Value]) -> StorageResult<Option<Bag>> {
        let Some(rel) = self.self_rel else {
            return Ok(None);
        };
        if self.batched {
            // The build phase indexed every materialized aggregate on its
            // group columns, so self-maintenance reads are O(1) probes.
            if let Some((idx, permute)) = rel.find_exact_index(cols) {
                let bag = if permute {
                    let probe: Vec<Value> = rel
                        .index_key_cols(idx)
                        .iter()
                        .map(|c| {
                            cols.iter()
                                .position(|x| x == c)
                                .map(|i| key[i].clone())
                                .ok_or_else(|| {
                                    spacetime_storage::StorageError::Internal(
                                        "exact index key columns not a subset of probe columns"
                                            .into(),
                                    )
                                })
                        })
                        .collect::<StorageResult<_>>()?;
                    rel.peek(idx, &probe).cloned().unwrap_or_default()
                } else {
                    rel.peek(idx, key).cloned().unwrap_or_default()
                };
                return Ok(Some(bag));
            }
        }
        Ok(Some(filter_binding(rel.data(), cols, key)))
    }

    fn group_complete(&self, _cols: &[usize]) -> bool {
        self.complete
    }
}

fn self_leaf_tables(memo: &Memo, root: GroupId) -> Vec<String> {
    leaf_tables(memo, root)
}

/// Distinct base tables scanned under `root`.
pub fn leaf_tables(memo: &Memo, root: GroupId) -> Vec<String> {
    let mut out = Vec::new();
    for g in spacetime_memo::descendant_groups(memo, root) {
        for op in memo.group_ops(g) {
            if let OpKind::Scan { table } = &memo.op(op).op {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
        }
    }
    out.sort();
    out
}

/// The leaf group scanning `table` under `root`.
fn leaf_group(memo: &Memo, root: GroupId, table: &str) -> Option<GroupId> {
    spacetime_memo::descendant_groups(memo, root)
        .into_iter()
        .find(|&g| {
            memo.group_ops(g)
                .iter()
                .any(|&op| matches!(&memo.op(op).op, OpKind::Scan { table: t } if t == table))
        })
}

/// Children-first order of a track's chosen groups.
fn topo_order(memo: &Memo, track: &UpdateTrack) -> Vec<GroupId> {
    let mut order = Vec::new();
    let mut state: BTreeMap<GroupId, u8> = BTreeMap::new();
    fn visit(
        memo: &Memo,
        track: &UpdateTrack,
        g: GroupId,
        state: &mut BTreeMap<GroupId, u8>,
        order: &mut Vec<GroupId>,
    ) {
        if state.get(&g).copied().unwrap_or(0) != 0 {
            return;
        }
        state.insert(g, 1);
        if let Some(&op) = track.choices.get(&g) {
            for c in memo.op_children(op) {
                visit(memo, track, c, state, order);
            }
        }
        state.insert(g, 2);
        order.push(g);
    }
    let keys: Vec<GroupId> = track.choices.keys().copied().collect();
    for g in keys {
        visit(memo, track, g, &mut state, &mut order);
    }
    order
}

/// Group a track's topo order into *levels*: a group's level is one more
/// than the deepest delta-carrying child (the leaf is level 0). Groups on
/// the same level never read each other's deltas, so they can propagate
/// concurrently. Also fingerprints each group's access-free prefix chain
/// (`Scan → Select/Project…` from the leaf) for the cross-engine
/// shared-delta cache; chains stop at the first op that poses queries.
fn level_plan(
    memo: &Memo,
    track: &UpdateTrack,
    order: &[GroupId],
    leaf: GroupId,
    table: &str,
) -> (Vec<Vec<GroupId>>, BTreeMap<GroupId, ChainFingerprint>) {
    let mut level_of: BTreeMap<GroupId, usize> = BTreeMap::new();
    level_of.insert(leaf, 0);
    let mut chains: BTreeMap<GroupId, ChainFingerprint> = BTreeMap::new();
    chains.insert(
        leaf,
        Arc::new(vec![OpKind::Scan {
            table: table.to_string(),
        }]),
    );
    let mut levels: Vec<Vec<GroupId>> = Vec::new();
    for &g in order {
        if g == leaf {
            continue;
        }
        let Some(&op) = track.choices.get(&g) else {
            continue;
        };
        let children = memo.op_children(op);
        // Deepest child that can carry a delta this track; groups with no
        // such child never receive deltas and need no level.
        let Some(deepest) = children
            .iter()
            .filter_map(|c| level_of.get(c))
            .max()
            .copied()
        else {
            continue;
        };
        let lvl = deepest + 1;
        level_of.insert(g, lvl);
        while levels.len() < lvl {
            levels.push(Vec::new());
        }
        levels[lvl - 1].push(g);
        // Extend the access-free chain through unary Select/Project only.
        let kind = &memo.op(op).op;
        if matches!(kind, OpKind::Select { .. } | OpKind::Project { .. }) {
            if let Some(parent_chain) = children.first().and_then(|c| chains.get(c)) {
                let mut chain = (**parent_chain).clone();
                chain.push(kind.clone());
                chains.insert(g, Arc::new(chain));
            }
        }
    }
    // The leaf's "chain" is the base delta itself — caching it would only
    // copy the input around.
    chains.remove(&leaf);
    (levels, chains)
}

/// Short variant name of an op, for trace span labels.
fn kind_name(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::Scan { .. } => "Scan",
        OpKind::Select { .. } => "Select",
        OpKind::Project { .. } => "Project",
        OpKind::Join { .. } => "Join",
        OpKind::Aggregate { .. } => "Aggregate",
        OpKind::Distinct => "Distinct",
    }
}

/// Add `other`'s counters into `io` (u64 sums — order-independent, so
/// merging per-thread meters reproduces the sequential totals exactly).
fn add_io(io: &mut IoMeter, other: &IoMeter) {
    io.index_page_reads += other.index_page_reads;
    io.index_page_writes += other.index_page_writes;
    io.data_page_reads += other.data_page_reads;
    io.data_page_writes += other.data_page_writes;
}

/// Column sets other nodes may query each group on (used to pre-create
/// indexes on materializations): join columns from parent joins, group
/// columns from parent aggregates, and each aggregate node's own group
/// columns (for self-maintenance lookups by the database layer). One pass
/// over the memo's ops covers every group, instead of one full walk per
/// materialized group.
fn needed_indexes_map(memo: &Memo) -> BTreeMap<GroupId, Vec<Vec<usize>>> {
    let mut out: BTreeMap<GroupId, Vec<Vec<usize>>> = BTreeMap::new();
    for group in memo.groups() {
        for op in memo.group_ops(group) {
            let children = memo.op_children(op);
            match &memo.op(op).op {
                OpKind::Join { condition } => {
                    if let Some(&c) = children.first() {
                        let cols = condition.left_cols();
                        if !cols.is_empty() {
                            out.entry(memo.find(c)).or_default().push(cols);
                        }
                    }
                    if let Some(&c) = children.get(1) {
                        let cols = condition.right_cols();
                        if !cols.is_empty() {
                            out.entry(memo.find(c)).or_default().push(cols);
                        }
                    }
                }
                OpKind::Aggregate { group_by, .. } if !group_by.is_empty() => {
                    if let Some(&c) = children.first() {
                        out.entry(memo.find(c)).or_default().push(group_by.clone());
                    }
                    // The node's own aggregate output keys (group columns).
                    out.entry(memo.find(group))
                        .or_default()
                        .push((0..group_by.len()).collect());
                }
                _ => {}
            }
        }
    }
    out
}

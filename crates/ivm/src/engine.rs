//! The maintenance engine: materialize a chosen view set and keep it
//! incrementally maintained under base-table deltas.
//!
//! The engine executes the paper's §3.2 propagation model: for each updated
//! base relation it follows a pre-chosen (cheapest) update track, computes
//! each affected node's delta with the `spacetime-delta` rules — posing
//! queries through [`QueryExec`] so lookups hit materialized views exactly
//! where the optimizer assumed — and finally applies the deltas to every
//! materialized relation, charging the §3.6 update costs.
//!
//! I/O is reported per bucket ([`UpdateReport`]) so callers can reproduce
//! the paper's accounting, which excludes base-relation and top-level-view
//! updates.

use std::collections::BTreeMap;
use std::sync::Arc;

use spacetime_algebra::{ExprNode, OpKind};
use spacetime_cost::{CostCtx, PageIoCostModel, TransactionType};
use spacetime_delta::{apply_to_relation, Delta, InputAccess};
use spacetime_memo::{GroupId, Memo, OpId};
use spacetime_optimizer::tracks::UpdateTrack;
use spacetime_optimizer::{EvalConfig, ViewSet};
use spacetime_storage::{Bag, Catalog, IoMeter, StorageResult, Value};

use crate::qexec::{filter_binding, PlanCache, QueryExec};
use crate::{IvmError, IvmResult};

/// Which data plane [`IvmEngine::plan_update`] uses to answer the posed
/// queries of delta propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// One posed query at a time, plans re-costed per key, self-rows found
    /// by filtering the whole materialization — the pre-batching data
    /// plane, kept as the measurable baseline.
    PerKey,
    /// Each delta's distinct keys are collected up front and answered by
    /// one batched query per (child, columns), with plan choices cached
    /// across updates and self-maintenance reads answered by index probes.
    /// Produces bit-identical deltas and charges bit-identical I/O to
    /// [`PropagationMode::PerKey`] — batching changes wall-clock only.
    #[default]
    Batched,
}

/// Per-engine state the propagation hot path reuses across updates, so a
/// stream of transactions does zero per-update setup: per-table topo
/// orders and leaf groups (computed once at build), and the runtime plan
/// cache (valid until statistics change, which only `analyze()` does).
#[derive(Debug, Default)]
struct PropagationCtx {
    /// Children-first order of each table's track groups.
    topo: BTreeMap<String, Vec<GroupId>>,
    /// The leaf group scanning each table.
    leaves: BTreeMap<String, GroupId>,
    /// Cached runtime plan decisions (used by the batched mode).
    plans: PlanCache,
}

/// Per-bucket I/O accounting for one propagated update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// I/O spent answering the posed queries (delta computation).
    pub query_io: IoMeter,
    /// I/O spent applying deltas to *additional* materialized views.
    pub aux_io: IoMeter,
    /// I/O spent applying the delta to the top-level view.
    pub root_io: IoMeter,
    /// I/O spent applying the delta to the base relation.
    pub base_io: IoMeter,
}

impl UpdateReport {
    /// The §3.6 metric: query cost + additional-view maintenance, with
    /// base-relation and top-level-view updates excluded ("We do not count
    /// the cost of updating the database relations, or the top-level view
    /// ProblemDept").
    pub fn paper_cost(&self) -> u64 {
        self.query_io.total() + self.aux_io.total()
    }

    /// Everything, including root and base updates.
    pub fn total(&self) -> u64 {
        self.paper_cost() + self.root_io.total() + self.base_io.total()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &UpdateReport) {
        for (a, b) in [
            (&mut self.query_io, &other.query_io),
            (&mut self.aux_io, &other.aux_io),
            (&mut self.root_io, &other.root_io),
            (&mut self.base_io, &other.base_io),
        ] {
            a.index_page_reads += b.index_page_reads;
            a.index_page_writes += b.index_page_writes;
            a.data_page_reads += b.data_page_reads;
            a.data_page_writes += b.data_page_writes;
        }
    }
}

/// A planned (not yet applied) update: the deltas for every materialized
/// node plus the query I/O already spent computing them.
#[derive(Debug, Clone)]
pub struct PlannedUpdate {
    /// The updated base table.
    pub table: String,
    /// The incoming base delta.
    pub base_delta: Delta,
    /// Deltas per materialized group (in application order).
    pub view_deltas: Vec<(GroupId, Delta)>,
    /// Report with `query_io` filled in.
    pub report: UpdateReport,
}

impl PlannedUpdate {
    /// The root view's delta, if the root is affected.
    pub fn root_delta(&self, root: GroupId) -> Option<&Delta> {
        self.view_deltas
            .iter()
            .find(|(g, _)| *g == root)
            .map(|(_, d)| d)
    }
}

/// One maintained view (plus its chosen auxiliary materializations).
#[derive(Debug)]
pub struct IvmEngine {
    /// The view's name (backing table of the root).
    pub name: String,
    /// The expression DAG.
    pub memo: Memo,
    /// Primary root group (the view itself).
    pub root: GroupId,
    /// All root groups (one per view when several views share this
    /// engine's DAG, §6's multi-rooted case; contains `root`).
    pub roots: std::collections::BTreeSet<GroupId>,
    /// The materialized view set (root included).
    pub view_set: ViewSet,
    /// Materialized group → backing table.
    pub materialized: BTreeMap<GroupId, String>,
    /// Cost model used for runtime plan choices.
    pub model: PageIoCostModel,
    /// Chosen update track per base table.
    tracks: BTreeMap<String, UpdateTrack>,
    /// Key-elimination result per (table, aggregate op on that track).
    complete: BTreeMap<(String, OpId), bool>,
    /// Reused propagation state (topo orders, leaf groups, plan cache).
    prop_ctx: PropagationCtx,
    /// Which data plane answers posed queries.
    mode: PropagationMode,
}

impl IvmEngine {
    /// Materialize `view_set` (the root plus auxiliaries) into the
    /// catalog, choose per-table update tracks, and return the engine.
    /// Initial materialization is a full (uncharged) computation.
    pub fn build(
        name: impl Into<String>,
        memo: Memo,
        root: GroupId,
        view_set: ViewSet,
        catalog: &mut Catalog,
    ) -> IvmResult<IvmEngine> {
        let name = name.into();
        Self::build_with_roots(vec![(name, root)], memo, view_set, catalog)
    }

    /// Multi-rooted variant (§6): several views share one DAG and one set
    /// of auxiliary materializations. `named_roots` pairs each view's
    /// backing-table name with its root group; the first entry is the
    /// primary (it names the auxiliary tables).
    pub fn build_with_roots(
        named_roots: Vec<(String, GroupId)>,
        memo: Memo,
        view_set: ViewSet,
        catalog: &mut Catalog,
    ) -> IvmResult<IvmEngine> {
        assert!(!named_roots.is_empty(), "at least one root view");
        let named_roots: Vec<(String, GroupId)> = named_roots
            .into_iter()
            .map(|(n, g)| (n, memo.find(g)))
            .collect();
        let name = named_roots[0].0.clone();
        let root = named_roots[0].1;
        let roots: std::collections::BTreeSet<GroupId> =
            named_roots.iter().map(|&(_, g)| g).collect();
        let view_set: ViewSet = view_set
            .iter()
            .map(|&g| memo.find(g))
            .chain(roots.iter().copied())
            .collect();
        let model = PageIoCostModel::default();

        // Materialize every marked group. Queryable column sets for the
        // whole memo are collected in one pass, instead of re-walking
        // every memo op per materialized group.
        let index_map = needed_indexes_map(&memo);
        let mut materialized = BTreeMap::new();
        for &g in &view_set {
            let table_name = if let Some((n, _)) = named_roots.iter().find(|&&(_, r)| r == g) {
                n.clone()
            } else {
                format!("{name}__aux_N{}", g.0)
            };
            let schema = memo.schema(g).requalify(&table_name);
            catalog.create_materialized(&table_name, schema)?;
            let tree = memo.extract_one(g);
            let contents = spacetime_algebra::eval_uncharged(&tree, catalog)?;
            // Indexes: one per column set this node can be queried on.
            let mut index_sets = index_map.get(&g).cloned().unwrap_or_default();
            index_sets.sort();
            index_sets.dedup();
            {
                let t = catalog.table_mut(&table_name)?;
                for cols in index_sets {
                    if !cols.is_empty() {
                        t.relation.create_index(cols)?;
                    }
                }
                t.relation.load(contents)?;
                t.analyze();
            }
            materialized.insert(g, table_name);
        }

        // Choose the cheapest track per base table (unit-modify probe
        // transactions; the optimizer's evaluation machinery picks the
        // same tracks its cost tables did).
        let mut tracks = BTreeMap::new();
        let mut complete = BTreeMap::new();
        let mut leaf_tables: Vec<String> = Vec::new();
        for &r in &roots {
            for t in self_leaf_tables(&memo, r) {
                if !leaf_tables.contains(&t) {
                    leaf_tables.push(t);
                }
            }
        }
        let config = EvalConfig::default();
        let mut ctx = CostCtx::new(&memo, catalog, &model);
        for table in &leaf_tables {
            let txn = TransactionType::modify(format!(">{table}"), table.clone(), 1.0);
            let root_vec: Vec<GroupId> = roots.iter().copied().collect();
            let eval = spacetime_optimizer::evaluate_multi(
                &mut ctx,
                catalog,
                &root_vec,
                &view_set,
                &[txn],
                &config,
            );
            let Some(txn_eval) = eval.per_txn.first() else {
                continue;
            };
            let Some(best) = txn_eval.tracks.get(txn_eval.best_track) else {
                continue;
            };
            let track = best.track.clone();
            // Precompute key-elimination per aggregate op on this track.
            for (&g, &op) in &track.choices {
                if let OpKind::Aggregate { group_by, .. } = &memo.op(op).op {
                    let child = memo.op_children(op)[0];
                    let ok = spacetime_optimizer::delta_group_complete(
                        &memo, catalog, &track, child, group_by, table,
                    );
                    complete.insert((table.clone(), op), ok);
                }
                let _ = g;
            }
            tracks.insert(table.clone(), track);
        }

        // Per-table propagation state, computed once instead of on every
        // update: topo order and leaf group of each track.
        let mut prop_ctx = PropagationCtx::default();
        for (table, track) in &tracks {
            prop_ctx
                .topo
                .insert(table.clone(), topo_order(&memo, track));
            if let Some(leaf) = roots.iter().find_map(|&r| leaf_group(&memo, r, table)) {
                prop_ctx.leaves.insert(table.clone(), leaf);
            }
        }

        Ok(IvmEngine {
            name,
            memo,
            root,
            roots,
            view_set,
            materialized,
            model,
            tracks,
            complete,
            prop_ctx,
            mode: PropagationMode::default(),
        })
    }

    /// Switch the data plane answering posed queries. Both modes produce
    /// identical deltas and charge identical I/O; `PerKey` exists as the
    /// benchmark baseline.
    pub fn set_propagation_mode(&mut self, mode: PropagationMode) {
        self.mode = mode;
    }

    /// The active propagation mode.
    pub fn propagation_mode(&self) -> PropagationMode {
        self.mode
    }

    /// Whether this engine's DAG reads `table`.
    pub fn depends_on(&self, table: &str) -> bool {
        self.tracks.contains_key(table)
    }

    /// Phase 1: propagate a base delta along the chosen track, computing
    /// the delta of every affected materialized node. Reads only
    /// *pre-update* state; applies nothing.
    pub fn plan_update(
        &self,
        catalog: &Catalog,
        table: &str,
        base_delta: &Delta,
    ) -> IvmResult<PlannedUpdate> {
        let mut report = UpdateReport::default();
        let Some(track) = self.tracks.get(table) else {
            return Ok(PlannedUpdate {
                table: table.to_string(),
                base_delta: base_delta.clone(),
                view_deltas: Vec::new(),
                report,
            });
        };
        let batched = self.mode == PropagationMode::Batched;
        let mut exec = QueryExec::new(&self.memo, catalog, &self.materialized);
        if batched {
            exec = exec.with_plans(&self.prop_ctx.plans);
        }
        let mut ctx = CostCtx::new(&self.memo, catalog, &self.model);

        // Topological order of the track's groups (children first) and the
        // table's leaf group, both computed once at build time.
        let order = self
            .prop_ctx
            .topo
            .get(table)
            .expect("topo computed at build for every track");
        let leaf = self.prop_ctx.leaves.get(table).copied().ok_or_else(|| {
            IvmError::Unsupported(format!("table `{table}` not under view `{}`", self.name))
        })?;
        let mut deltas: BTreeMap<GroupId, Delta> = BTreeMap::new();
        deltas.insert(leaf, base_delta.clone());

        for &g in order {
            let Some(&op) = track.choices.get(&g) else {
                continue;
            };
            let children = self.memo.op_children(op);
            // Exactly one child may carry a delta (sequential propagation;
            // a self-join of the updated table would put deltas on both).
            let carriers: Vec<usize> = children
                .iter()
                .enumerate()
                .filter(|(_, c)| deltas.get(c).is_some_and(|d| !d.is_empty()))
                .map(|(i, _)| i)
                .collect();
            if carriers.len() > 1 {
                return Err(IvmError::Unsupported(
                    "propagation through a self-join of the updated relation".into(),
                ));
            }
            let Some(&delta_child) = carriers.first() else {
                continue;
            };
            let d_in = deltas[&children[delta_child]].clone();
            let node = Arc::new(ExprNode {
                op: self.memo.op(op).op.clone(),
                children: vec![],
                schema: self.memo.schema(g).clone(),
            });
            let self_mv = self
                .materialized
                .get(&g)
                .map(|t| catalog.table(t))
                .transpose()?;
            let complete = *self
                .complete
                .get(&(table.to_string(), op))
                .unwrap_or(&false);
            let mut access = EngineAccess {
                exec: &exec,
                ctx: &mut ctx,
                children: &children,
                self_rel: self_mv.map(|t| &t.relation),
                complete,
                batched,
                io: &mut report.query_io,
            };
            let d_out = spacetime_delta::propagate(&node, delta_child, &d_in, &mut access)?;
            deltas.insert(g, d_out);
        }

        // Deltas for materialized nodes, children before parents (same
        // topo order), so commit order never violates referential
        // assumptions.
        let view_deltas: Vec<(GroupId, Delta)> = order
            .iter()
            .filter(|g| self.materialized.contains_key(g))
            .filter_map(|&g| deltas.get(&g).map(|d| (g, d.clone())))
            .filter(|(_, d)| !d.is_empty())
            .collect();
        Ok(PlannedUpdate {
            table: table.to_string(),
            base_delta: base_delta.clone(),
            view_deltas,
            report,
        })
    }

    /// Phase 2: apply a planned update's view deltas (the base relation is
    /// the caller's responsibility, since several engines may share it).
    pub fn commit_update(
        &self,
        catalog: &mut Catalog,
        planned: &PlannedUpdate,
    ) -> IvmResult<UpdateReport> {
        let mut report = planned.report.clone();
        for (g, delta) in &planned.view_deltas {
            let table = &self.materialized[g];
            let io = if self.roots.contains(g) {
                &mut report.root_io
            } else {
                &mut report.aux_io
            };
            let rel = &mut catalog.table_mut(table)?.relation;
            apply_to_relation(delta, rel, io)?;
        }
        Ok(report)
    }

    /// Convenience: plan + commit in one call (no assertion gating).
    pub fn apply_update(
        &self,
        catalog: &mut Catalog,
        table: &str,
        base_delta: &Delta,
    ) -> IvmResult<UpdateReport> {
        let planned = self.plan_update(catalog, table, base_delta)?;
        self.commit_update(catalog, &planned)
    }

    /// The root view's current contents.
    pub fn root_contents<'a>(&self, catalog: &'a Catalog) -> StorageResult<&'a Bag> {
        Ok(catalog.table(&self.name)?.relation.data())
    }
}

/// `InputAccess` over the engine: queries via [`QueryExec`] (charged),
/// self-rows from the node's own materialization (uncharged — the
/// subsequent update application pays for reading the tuple, per §3.6's
/// "reading, modifying and writing 1 tuple" arithmetic).
struct EngineAccess<'e, 'c, 'x> {
    exec: &'e QueryExec<'e>,
    ctx: &'e mut CostCtx<'c>,
    children: &'e [GroupId],
    self_rel: Option<&'e spacetime_storage::Relation>,
    complete: bool,
    batched: bool,
    io: &'x mut IoMeter,
}

impl InputAccess for EngineAccess<'_, '_, '_> {
    fn matching(&mut self, child: usize, cols: &[usize], key: &[Value]) -> StorageResult<Bag> {
        self.exec
            .query(self.children[child], cols, key, self.ctx, self.io)
    }

    fn matching_all(
        &mut self,
        child: usize,
        cols: &[usize],
        keys: &[Vec<Value>],
    ) -> StorageResult<BTreeMap<Vec<Value>, Bag>> {
        if self.batched {
            return self
                .exec
                .query_all(self.children[child], cols, keys, self.ctx, self.io);
        }
        // Per-key baseline: pose and plan each query individually.
        let mut out = BTreeMap::new();
        for key in keys {
            out.insert(key.clone(), self.matching(child, cols, key)?);
        }
        Ok(out)
    }

    fn self_rows(&mut self, cols: &[usize], key: &[Value]) -> StorageResult<Option<Bag>> {
        let Some(rel) = self.self_rel else {
            return Ok(None);
        };
        if self.batched {
            // The build phase indexed every materialized aggregate on its
            // group columns, so self-maintenance reads are O(1) probes.
            if let Some((idx, permute)) = rel.find_exact_index(cols) {
                let bag = if permute {
                    let probe: Vec<Value> = rel
                        .index_key_cols(idx)
                        .iter()
                        .map(|c| key[cols.iter().position(|x| x == c).expect("subset")].clone())
                        .collect();
                    rel.peek(idx, &probe).cloned().unwrap_or_default()
                } else {
                    rel.peek(idx, key).cloned().unwrap_or_default()
                };
                return Ok(Some(bag));
            }
        }
        Ok(Some(filter_binding(rel.data(), cols, key)))
    }

    fn group_complete(&self, _cols: &[usize]) -> bool {
        self.complete
    }
}

fn self_leaf_tables(memo: &Memo, root: GroupId) -> Vec<String> {
    leaf_tables(memo, root)
}

/// Distinct base tables scanned under `root`.
pub fn leaf_tables(memo: &Memo, root: GroupId) -> Vec<String> {
    let mut out = Vec::new();
    for g in spacetime_memo::descendant_groups(memo, root) {
        for op in memo.group_ops(g) {
            if let OpKind::Scan { table } = &memo.op(op).op {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
        }
    }
    out.sort();
    out
}

/// The leaf group scanning `table` under `root`.
fn leaf_group(memo: &Memo, root: GroupId, table: &str) -> Option<GroupId> {
    spacetime_memo::descendant_groups(memo, root)
        .into_iter()
        .find(|&g| {
            memo.group_ops(g)
                .iter()
                .any(|&op| matches!(&memo.op(op).op, OpKind::Scan { table: t } if t == table))
        })
}

/// Children-first order of a track's chosen groups.
fn topo_order(memo: &Memo, track: &UpdateTrack) -> Vec<GroupId> {
    let mut order = Vec::new();
    let mut state: BTreeMap<GroupId, u8> = BTreeMap::new();
    fn visit(
        memo: &Memo,
        track: &UpdateTrack,
        g: GroupId,
        state: &mut BTreeMap<GroupId, u8>,
        order: &mut Vec<GroupId>,
    ) {
        if state.get(&g).copied().unwrap_or(0) != 0 {
            return;
        }
        state.insert(g, 1);
        if let Some(&op) = track.choices.get(&g) {
            for c in memo.op_children(op) {
                visit(memo, track, c, state, order);
            }
        }
        state.insert(g, 2);
        order.push(g);
    }
    let keys: Vec<GroupId> = track.choices.keys().copied().collect();
    for g in keys {
        visit(memo, track, g, &mut state, &mut order);
    }
    order
}

/// Column sets other nodes may query each group on (used to pre-create
/// indexes on materializations): join columns from parent joins, group
/// columns from parent aggregates, and each aggregate node's own group
/// columns (for self-maintenance lookups by the database layer). One pass
/// over the memo's ops covers every group, instead of one full walk per
/// materialized group.
fn needed_indexes_map(memo: &Memo) -> BTreeMap<GroupId, Vec<Vec<usize>>> {
    let mut out: BTreeMap<GroupId, Vec<Vec<usize>>> = BTreeMap::new();
    for group in memo.groups() {
        for op in memo.group_ops(group) {
            let children = memo.op_children(op);
            match &memo.op(op).op {
                OpKind::Join { condition } => {
                    if let Some(&c) = children.first() {
                        let cols = condition.left_cols();
                        if !cols.is_empty() {
                            out.entry(memo.find(c)).or_default().push(cols);
                        }
                    }
                    if let Some(&c) = children.get(1) {
                        let cols = condition.right_cols();
                        if !cols.is_empty() {
                            out.entry(memo.find(c)).or_default().push(cols);
                        }
                    }
                }
                OpKind::Aggregate { group_by, .. } if !group_by.is_empty() => {
                    if let Some(&c) = children.first() {
                        out.entry(memo.find(c)).or_default().push(group_by.clone());
                    }
                    // The node's own aggregate output keys (group columns).
                    out.entry(memo.find(group))
                        .or_default()
                        .push((0..group_by.len()).collect());
                }
                _ => {}
            }
        }
    }
    out
}

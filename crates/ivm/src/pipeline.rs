//! The parallel delta-propagation pipeline: worker pool, execution mode,
//! and the per-transaction cross-engine shared-delta cache.
//!
//! Parallelism here is strictly a wall-clock optimization (DESIGN.md §11).
//! The pipeline must produce bit-identical deltas, view contents, and
//! charged I/O versus sequential execution:
//!
//! * **Engine level** — each dependent engine plans against an immutable
//!   [`spacetime_storage::CatalogSnapshot`] with its own `IoMeter`, so
//!   per-engine reports are exactly what sequential planning would have
//!   produced; the database merges them in engine order.
//! * **Track level** — groups at the same topological level of an update
//!   track are independent (each reads only earlier levels' deltas plus
//!   pre-update state) and may be propagated concurrently into per-group
//!   delta slots.
//! * **Shared deltas** — an access-free propagation prefix (base delta
//!   through `Select`/`Project` chains) poses no queries and charges no
//!   I/O in any mode, so its result may be computed once per transaction
//!   and reused by every engine whose track carries the same chain.
//!
//! No external thread-pool crate is used: a small bounded pool over
//! `std::sync::mpsc` suffices, honoring `RAYON_NUM_THREADS` so CI can pin
//! the thread count.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use spacetime_algebra::OpKind;
use spacetime_delta::Delta;

/// How [`crate::Database`] executes delta propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One engine after another on the calling thread (the baseline).
    #[default]
    Sequential,
    /// Dependent engines plan concurrently against a catalog snapshot,
    /// same-level track groups propagate concurrently, commits of disjoint
    /// materializations run concurrently, and access-free delta prefixes
    /// are shared across engines. Produces bit-identical reports, deltas,
    /// and view contents to [`ExecutionMode::Sequential`].
    Parallel,
}

/// Resolve the pipeline's thread count: `RAYON_NUM_THREADS` (the
/// conventional knob, honored even though the pool is hand-rolled) if set
/// and positive, else the machine's available parallelism.
pub fn default_thread_count() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

type Job = Box<dyn FnOnce() + Send>;

/// A persistent worker pool for per-transaction fan-out.
///
/// Transactions are short (tens of microseconds), so spawning OS threads
/// per transaction would eat the parallel win; the pool keeps its workers
/// alive across transactions and hands them boxed jobs over a channel.
#[derive(Debug)]
pub struct PipelinePool {
    threads: usize,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl PipelinePool {
    /// A pool with an explicit worker count (≥ 1). With one thread, jobs
    /// run inline on the caller — useful for pinned determinism tests.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return PipelinePool {
                threads,
                tx: None,
                workers: Vec::new(),
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("ivm-pipeline-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().expect("pool receiver");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // pool dropped
                        }
                    })
                    .expect("spawn pipeline worker")
            })
            .collect();
        PipelinePool {
            threads,
            tx: Some(tx),
            workers,
        }
    }

    /// A pool sized by [`default_thread_count`].
    pub fn with_default_threads() -> Self {
        Self::new(default_thread_count())
    }

    /// The process-wide shared pool (created on first use).
    pub fn global() -> Arc<PipelinePool> {
        static GLOBAL: OnceLock<Arc<PipelinePool>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(PipelinePool::with_default_threads())))
    }

    /// The worker count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task, returning results in task order. Tasks run on the
    /// workers (or inline when the pool has one thread or one task); the
    /// caller blocks until all complete. A panicking task is re-raised on
    /// the caller after the batch drains, so workers stay alive.
    pub fn run<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let Some(tx) = &self.tx else {
            return tasks.into_iter().map(|t| t()).collect();
        };
        if n <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        type Outcome<T> = Result<T, Box<dyn std::any::Any + Send>>;
        let (rtx, rrx) = channel::<(usize, Outcome<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let rtx = rtx.clone();
            tx.send(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                let _ = rtx.send((i, outcome));
            }))
            .expect("pool workers alive");
        }
        drop(rtx);
        let mut slots: Vec<Option<Outcome<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = rrx.recv().expect("every job reports");
            slots[i] = Some(outcome);
        }
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.expect("all slots filled") {
                Ok(v) => out.push(v),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }
}

impl Drop for PipelinePool {
    fn drop(&mut self) {
        self.tx.take(); // closes the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A canonical fingerprint of an access-free propagation prefix: the op
/// chain from a base-table scan upward through unary `Select`/`Project`
/// steps. Two engines whose tracks carry equal chains compute — by the
/// purity of those propagation rules — equal deltas from the same base
/// delta, so the chain itself is a collision-free cache key.
pub type ChainFingerprint = Arc<Vec<OpKind>>;

/// Per-transaction cross-engine memo of access-free propagated deltas.
///
/// Only `Scan → Select/Project…` prefixes are cacheable: their propagation
/// rules never touch `InputAccess`, pose zero queries, and charge zero
/// I/O in every mode — so reusing a result cannot perturb the charged-I/O
/// invariant. The cache lives for one transaction (one base delta); the
/// database creates a fresh one per `apply_delta`.
#[derive(Debug, Default)]
pub struct SharedDeltaCache {
    map: Mutex<HashMap<ChainFingerprint, Delta>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedDeltaCache {
    /// An empty cache.
    pub fn new() -> Self {
        SharedDeltaCache::default()
    }

    /// The cached delta for a chain, if another engine propagated it.
    pub fn get(&self, fp: &ChainFingerprint) -> Option<Delta> {
        let found = self.map.lock().expect("cache lock").get(fp).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Record a propagated delta for a chain. Concurrent inserts of the
    /// same chain are idempotent (purity: equal chains → equal deltas).
    pub fn put(&self, fp: ChainFingerprint, delta: Delta) {
        self.map.lock().expect("cache lock").insert(fp, delta);
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_storage::tuple;

    #[test]
    fn pool_returns_results_in_task_order() {
        let pool = PipelinePool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = pool.run(tasks);
        assert_eq!(got, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = PipelinePool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send>> = (0..4)
            .map(|_| {
                Box::new(move || std::thread::current().id() == tid)
                    as Box<dyn FnOnce() -> bool + Send>
            })
            .collect();
        assert!(pool.run(tasks).into_iter().all(|on_caller| on_caller));
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = PipelinePool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom")),
            Box::new(|| 3),
        ];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool still works afterwards.
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 7), Box::new(|| 8)];
        assert_eq!(pool.run(tasks), vec![7, 8]);
    }

    #[test]
    fn thread_count_resolution_prefers_env() {
        // Can't set the env var safely in-process across tests; just check
        // the fallback is sane.
        assert!(default_thread_count() >= 1);
    }

    #[test]
    fn shared_cache_hit_and_miss_accounting() {
        let cache = SharedDeltaCache::new();
        let fp: ChainFingerprint = Arc::new(vec![OpKind::Scan {
            table: "Emp".into(),
        }]);
        assert!(cache.get(&fp).is_none());
        cache.put(Arc::clone(&fp), Delta::insert(tuple![1], 1));
        // A structurally equal chain from *another* engine hits.
        let same: ChainFingerprint = Arc::new(vec![OpKind::Scan {
            table: "Emp".into(),
        }]);
        assert_eq!(cache.get(&same), Some(Delta::insert(tuple![1], 1)));
        assert_eq!(cache.stats(), (1, 1));
    }
}

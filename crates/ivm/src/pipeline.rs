//! The parallel delta-propagation pipeline: worker pool, execution mode,
//! and the per-transaction cross-engine shared-delta cache.
//!
//! Parallelism here is strictly a wall-clock optimization (DESIGN.md §11).
//! The pipeline must produce bit-identical deltas, view contents, and
//! charged I/O versus sequential execution:
//!
//! * **Engine level** — each dependent engine plans against an immutable
//!   [`spacetime_storage::CatalogSnapshot`] with its own `IoMeter`, so
//!   per-engine reports are exactly what sequential planning would have
//!   produced; the database merges them in engine order.
//! * **Track level** — groups at the same topological level of an update
//!   track are independent (each reads only earlier levels' deltas plus
//!   pre-update state) and may be propagated concurrently into per-group
//!   delta slots.
//! * **Shared deltas** — an access-free propagation prefix (base delta
//!   through `Select`/`Project` chains) poses no queries and charges no
//!   I/O in any mode, so its result may be computed once per transaction
//!   and reused by every engine whose track carries the same chain.
//!
//! No external thread-pool crate is used: a small bounded pool over
//! `std::sync::mpsc` suffices, honoring `RAYON_NUM_THREADS` so CI can pin
//! the thread count.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use spacetime_algebra::OpKind;
use spacetime_delta::Delta;
use spacetime_obs::{self as obs, names as metric};
use spacetime_storage::fault;

use crate::{IvmError, IvmResult};

/// How [`crate::Database`] executes delta propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One engine after another on the calling thread (the baseline).
    #[default]
    Sequential,
    /// Dependent engines plan concurrently against a catalog snapshot,
    /// same-level track groups propagate concurrently, commits of disjoint
    /// materializations run concurrently, and access-free delta prefixes
    /// are shared across engines. Produces bit-identical reports, deltas,
    /// and view contents to [`ExecutionMode::Sequential`].
    Parallel,
}

/// Resolve the pipeline's thread count: `RAYON_NUM_THREADS` (the
/// conventional knob, honored even though the pool is hand-rolled) if set
/// and positive, else the machine's available parallelism.
pub fn default_thread_count() -> usize {
    env_width_override().unwrap_or_else(host_cpus)
}

/// The explicit width override from the environment
/// (`RAYON_NUM_THREADS`, if set and positive). An explicit override
/// disables [`crate::Database`]'s single-CPU parallel auto-degrade: the
/// operator asked for that width and gets it.
pub fn env_width_override() -> Option<usize> {
    let v = std::env::var("RAYON_NUM_THREADS").ok()?;
    let n = v.trim().parse::<usize>().ok()?;
    (n >= 1).then_some(n)
}

/// The machine's available parallelism, resolved once per process.
pub fn host_cpus() -> usize {
    static CPUS: OnceLock<usize> = OnceLock::new();
    *CPUS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

type Job = Box<dyn FnOnce() + Send>;

/// A task's result as seen by the pool: the value, or the panic payload
/// rendered to a message. The pool never lets a task's unwind escape a
/// worker; callers decide whether a panic is a typed error
/// ([`crate::IvmError::TaskPanicked`]) or should be re-raised.
pub type TaskOutcome<T> = Result<T, String>;

type RawOutcome<T> = Result<T, Box<dyn std::any::Any + Send>>;

/// Render a panic payload (string payloads verbatim, anything else typed).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A persistent worker pool for per-transaction fan-out.
///
/// Transactions are short (tens of microseconds), so spawning OS threads
/// per transaction would eat the parallel win; the pool keeps its workers
/// alive across transactions and hands them boxed jobs over a channel.
///
/// Panic containment: every task (pooled *and* inline) runs under
/// `catch_unwind`, so a panicking task never kills a worker's job loop
/// and never unwinds the caller unless the caller opts in
/// ([`PipelinePool::run`]). Should a worker thread nevertheless die, the
/// next dispatch detects and replaces it ([`PipelinePool::run_outcomes`]
/// calls `ensure_workers`), so one poisoned transaction cannot degrade
/// the pool for the rest of the process.
#[derive(Debug)]
pub struct PipelinePool {
    threads: usize,
    tx: Option<Sender<Job>>,
    /// Shared job receiver, kept here too so worker respawn can re-attach
    /// to the same queue (and so `tx.send` cannot observe a closed
    /// channel while the pool is alive).
    rx: Option<Arc<Mutex<Receiver<Job>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

fn spawn_worker(i: usize, rx: Arc<Mutex<Receiver<Job>>>) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ivm-pipeline-{i}"))
        .spawn(move || loop {
            let job = {
                // A sibling worker that died while holding the lock (it
                // cannot panic during `recv`, but stay defensive) must not
                // take the whole pool down with lock poisoning.
                let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                guard.recv()
            };
            match job {
                Ok(job) => job(),
                Err(_) => return, // pool dropped
            }
        })
}

impl PipelinePool {
    /// A pool with an explicit worker count (≥ 1). With one thread, jobs
    /// run inline on the caller — useful for pinned determinism tests.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return PipelinePool {
                threads,
                tx: None,
                rx: None,
                workers: Mutex::new(Vec::new()),
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| spawn_worker(i, Arc::clone(&rx)).expect("spawn pipeline worker"))
            .collect();
        PipelinePool {
            threads,
            tx: Some(tx),
            rx: Some(rx),
            workers: Mutex::new(workers),
        }
    }

    /// Replace workers whose threads have exited (e.g. a panic that
    /// escaped the per-job `catch_unwind`, which should be impossible, or
    /// a crashed thread). Called on every dispatch; a healthy pool pays
    /// one `is_finished` check per worker.
    fn ensure_workers(&self) {
        let Some(rx) = &self.rx else {
            return;
        };
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for (i, slot) in workers.iter_mut().enumerate() {
            if slot.is_finished() {
                if let Ok(fresh) = spawn_worker(i, Arc::clone(rx)) {
                    let dead = std::mem::replace(slot, fresh);
                    let _ = dead.join();
                    obs::counter_add(metric::POOL_RESPAWNS, 1);
                    obs::flight::record("worker_respawned", || format!("pool worker {i}"));
                }
            }
        }
    }

    /// A pool sized by [`default_thread_count`].
    pub fn with_default_threads() -> Self {
        Self::new(default_thread_count())
    }

    /// The process-wide shared pool (created on first use).
    pub fn global() -> Arc<PipelinePool> {
        static GLOBAL: OnceLock<Arc<PipelinePool>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(PipelinePool::with_default_threads())))
    }

    /// The worker count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every task, returning per-task outcomes in task order: `Ok`
    /// with the value, or `Err` with the rendered panic message if the
    /// task panicked. Tasks run on the workers (or inline when the pool
    /// has one thread or one task — *still* panic-contained); the caller
    /// blocks until all complete. The `ivm::pool_dispatch` failpoint fires
    /// as each task starts.
    pub fn run_outcomes<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send>>,
    ) -> IvmResult<Vec<TaskOutcome<T>>> {
        Ok(self
            .run_raw(tasks)?
            .into_iter()
            .map(|o| o.map_err(|p| panic_message(p.as_ref())))
            .collect())
    }

    /// Run every task, returning results in task order; a panicking task
    /// is re-raised on the caller after the batch drains. The legacy
    /// interface — transaction paths use [`PipelinePool::run_outcomes`]
    /// so a panic becomes a typed error instead of an unwind.
    pub fn run<T: Send + 'static>(&self, tasks: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
        let outcomes = self
            .run_raw(tasks)
            .unwrap_or_else(|e| panic!("pipeline pool unavailable: {e}"));
        let mut out = Vec::with_capacity(outcomes.len());
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for o in outcomes {
            match o {
                Ok(v) => out.push(v),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }

    fn run_raw<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send>>,
    ) -> IvmResult<Vec<RawOutcome<T>>> {
        let execute = |task: Box<dyn FnOnce() -> T + Send>| -> RawOutcome<T> {
            obs::gauge_add(metric::POOL_QUEUE_DEPTH, -1.0);
            let busy = obs::stopwatch();
            let out = catch_unwind(AssertUnwindSafe(move || {
                fault::fire_panic("ivm::pool_dispatch");
                task()
            }));
            busy.add_to_counter(metric::POOL_WORKER_BUSY_NS);
            out
        };
        let n = tasks.len();
        obs::counter_add(metric::POOL_TASKS, n as u64);
        obs::gauge_add(metric::POOL_QUEUE_DEPTH, n as f64);
        let inline = |tasks: Vec<Box<dyn FnOnce() -> T + Send>>| {
            Ok(tasks.into_iter().map(execute).collect())
        };
        let Some(tx) = &self.tx else {
            return inline(tasks);
        };
        if n <= 1 {
            return inline(tasks);
        }
        self.ensure_workers();
        let (rtx, rrx) = channel::<(usize, RawOutcome<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let rtx = rtx.clone();
            tx.send(Box::new(move || {
                let _ = rtx.send((i, execute(task)));
            }))
            .map_err(|_| {
                IvmError::Internal("pipeline pool job channel closed".into())
            })?;
        }
        drop(rtx);
        let mut slots: Vec<Option<RawOutcome<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = rrx.recv().map_err(|_| {
                IvmError::Internal(
                    "pipeline worker disconnected before reporting its task".into(),
                )
            })?;
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|s| s.ok_or_else(|| IvmError::Internal("pipeline task slot unfilled".into())))
            .collect()
    }
}

impl Drop for PipelinePool {
    fn drop(&mut self) {
        self.tx.take(); // closes the channel; workers drain and exit
        self.rx.take();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A canonical fingerprint of an access-free propagation prefix: the op
/// chain from a base-table scan upward through unary `Select`/`Project`
/// steps. Two engines whose tracks carry equal chains compute — by the
/// purity of those propagation rules — equal deltas from the same base
/// delta, so the chain itself is a collision-free cache key.
pub type ChainFingerprint = Arc<Vec<OpKind>>;

/// Per-transaction cross-engine memo of access-free propagated deltas.
///
/// Only `Scan → Select/Project…` prefixes are cacheable: their propagation
/// rules never touch `InputAccess`, pose zero queries, and charge zero
/// I/O in every mode — so reusing a result cannot perturb the charged-I/O
/// invariant. The cache lives for one transaction (one base delta); the
/// database creates a fresh one per `apply_delta`.
#[derive(Debug, Default)]
pub struct SharedDeltaCache {
    map: Mutex<HashMap<ChainFingerprint, Delta>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedDeltaCache {
    /// An empty cache.
    pub fn new() -> Self {
        SharedDeltaCache::default()
    }

    /// The cached delta for a chain, if another engine propagated it.
    pub fn get(&self, fp: &ChainFingerprint) -> Option<Delta> {
        let found = self
            .map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(fp)
            .cloned();
        obs::counter_add(metric::DELTA_CACHE_LOOKUPS, 1);
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter_add(metric::DELTA_CACHE_HITS, 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::counter_add(metric::DELTA_CACHE_MISSES, 1);
            }
        };
        found
    }

    /// Record a propagated delta for a chain. Concurrent inserts of the
    /// same chain are idempotent (purity: equal chains → equal deltas).
    pub fn put(&self, fp: ChainFingerprint, delta: Delta) {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fp, delta);
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_storage::tuple;

    #[test]
    fn pool_returns_results_in_task_order() {
        let pool = PipelinePool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = pool.run(tasks);
        assert_eq!(got, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = PipelinePool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send>> = (0..4)
            .map(|_| {
                Box::new(move || std::thread::current().id() == tid)
                    as Box<dyn FnOnce() -> bool + Send>
            })
            .collect();
        assert!(pool.run(tasks).into_iter().all(|on_caller| on_caller));
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let pool = PipelinePool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom")),
            Box::new(|| 3),
        ];
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // The pool still works afterwards.
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 7), Box::new(|| 8)];
        assert_eq!(pool.run(tasks), vec![7, 8]);
    }

    #[test]
    fn run_outcomes_contains_panics_at_every_width() {
        for width in [1usize, 2, 4] {
            let pool = PipelinePool::new(width);
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
                Box::new(|| 1),
                Box::new(|| panic!("boom at width")),
                Box::new(|| 3),
            ];
            let got = pool.run_outcomes(tasks).expect("pool dispatch healthy");
            assert_eq!(got[0], Ok(1));
            assert_eq!(got[1], Err("boom at width".to_string()));
            assert_eq!(got[2], Ok(3));
            // The pool still works afterwards.
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
                vec![Box::new(|| 7), Box::new(|| 8)];
            assert_eq!(
                pool.run_outcomes(tasks).expect("pool dispatch healthy"),
                vec![Ok(7), Ok(8)]
            );
        }
    }

    #[test]
    fn thread_count_resolution_prefers_env() {
        // Can't set the env var safely in-process across tests; just check
        // the fallback is sane.
        assert!(default_thread_count() >= 1);
    }

    #[test]
    fn shared_cache_hit_and_miss_accounting() {
        let cache = SharedDeltaCache::new();
        let fp: ChainFingerprint = Arc::new(vec![OpKind::Scan {
            table: "Emp".into(),
        }]);
        assert!(cache.get(&fp).is_none());
        cache.put(Arc::clone(&fp), Delta::insert(tuple![1], 1));
        // A structurally equal chain from *another* engine hits.
        let same: ChainFingerprint = Arc::new(vec![OpKind::Scan {
            table: "Emp".into(),
        }]);
        assert_eq!(cache.get(&same), Some(Delta::insert(tuple![1], 1)));
        assert_eq!(cache.stats(), (1, 1));
    }
}

//! Runtime evaluation of posed queries.
//!
//! During delta propagation, queries are posed on equivalence nodes
//! (§2.2). This module *executes* them, following the same plan space the
//! cost model priced: a query on a base relation or materialized view is
//! an index lookup; a query on any other node is answered through the
//! operation-node alternative with the lowest estimated cost, pushing the
//! binding down. Executing the plans the optimizer priced is what makes
//! the engine's *measured* page I/Os comparable to the *estimated* ones.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use spacetime_algebra::eval::{aggregate_bag, join_bags};
use spacetime_algebra::{JoinCondition, OpKind, ScalarExpr};
use spacetime_cost::{Cost, CostCtx, Marking};
use spacetime_memo::{GroupId, Memo, OpId};
use spacetime_obs::{self as obs, names as metric};
use spacetime_storage::{Bag, Catalog, HashIndex, IoMeter, StorageResult, Value};

/// Cached runtime plan decisions, shared across updates.
///
/// [`CostCtx`] borrows the catalog, which is mutated on every commit, so
/// the *context* cannot outlive one update — but the *decisions* it
/// produces depend only on the memo, the marking, and table statistics,
/// and statistics change only on `analyze()`. Caching the chosen `OpId`
/// per (group, bound columns) therefore reproduces exactly the plan a
/// fresh cost context would pick, while skipping the costing recursion on
/// every posed query after the first.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Best op per (group, bound column set); `None` = group has no ops.
    bound: Mutex<BoundPlans>,
    /// Best op per group for a full (unbound) evaluation.
    full: Mutex<HashMap<GroupId, Option<OpId>>>,
}

type BoundPlans = HashMap<GroupId, HashMap<Vec<usize>, Option<OpId>>>;

impl Clone for PlanCache {
    // Manual because `Mutex` is not `Clone`: snapshot the cached decisions.
    fn clone(&self) -> Self {
        PlanCache {
            bound: Mutex::new(self.bound.lock().unwrap_or_else(|e| e.into_inner()).clone()),
            full: Mutex::new(self.full.lock().unwrap_or_else(|e| e.into_inner()).clone()),
        }
    }
}

impl PlanCache {
    /// Drop every cached decision (call after `analyze()` changes stats).
    pub fn clear(&self) {
        self.bound.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.full.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Executes queries over the DAG against the catalog.
pub struct QueryExec<'a> {
    /// The expression DAG.
    pub memo: &'a Memo,
    /// Storage (base tables and materialized views).
    pub catalog: &'a Catalog,
    /// Materialized groups → backing table name.
    pub materialized: &'a BTreeMap<GroupId, String>,
    /// The same set as a cost-model marking.
    pub marking: Marking,
    /// Cached plan choices (batched data plane); `None` re-costs per query.
    plans: Option<&'a PlanCache>,
}

impl<'a> QueryExec<'a> {
    /// Build an executor for a set of materializations.
    pub fn new(
        memo: &'a Memo,
        catalog: &'a Catalog,
        materialized: &'a BTreeMap<GroupId, String>,
    ) -> Self {
        let marking: Marking = materialized.keys().copied().collect();
        QueryExec {
            memo,
            catalog,
            materialized,
            marking,
            plans: None,
        }
    }

    /// Reuse cached plan decisions across posed queries and updates.
    pub fn with_plans(mut self, plans: &'a PlanCache) -> Self {
        self.plans = Some(plans);
        self
    }

    /// All tuples of `g` whose `cols` equal `key`.
    pub fn query(
        &self,
        g: GroupId,
        cols: &[usize],
        key: &[Value],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let g = self.memo.find(g);
        if cols.is_empty() {
            return self.full_eval(g, ctx, io);
        }
        if let Some(table) = self.backing_table(g) {
            return self.stored_lookup(table, cols, key, io);
        }
        let Some(op) = self.best_query_op(g, cols, ctx) else {
            return Ok(Bag::new());
        };
        self.query_via_op(op, cols, key, ctx, io)
    }

    /// Batched variant of [`QueryExec::query`]: answer one posed query per
    /// key, resolving the plan (and any index choice) once for the whole
    /// batch. Charges exactly the I/O the per-key path would — batching is
    /// a wall-clock optimization, never an accounting one.
    pub fn query_all(
        &self,
        g: GroupId,
        cols: &[usize],
        keys: &[Vec<Value>],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<BTreeMap<Vec<Value>, Bag>> {
        let mut out = BTreeMap::new();
        if keys.is_empty() {
            return Ok(out);
        }
        let g = self.memo.find(g);
        if cols.is_empty() {
            for key in keys {
                out.insert(key.clone(), self.full_eval(g, ctx, io)?);
            }
            return Ok(out);
        }
        if let Some(table) = self.backing_table(g) {
            return self.stored_lookup_all(table, cols, keys, io);
        }
        let Some(op) = self.best_query_op(g, cols, ctx) else {
            for key in keys {
                out.insert(key.clone(), Bag::new());
            }
            return Ok(out);
        };
        for key in keys {
            out.insert(key.clone(), self.query_via_op(op, cols, key, ctx, io)?);
        }
        Ok(out)
    }

    /// The cheapest alternative for answering a bound query on `g`,
    /// exactly as the optimizer priced it (first strictly-cheaper op wins,
    /// matching the costing loop's tie-break). Cached when a [`PlanCache`]
    /// is attached.
    fn best_query_op(&self, g: GroupId, cols: &[usize], ctx: &mut CostCtx<'_>) -> Option<OpId> {
        if let Some(pc) = self.plans {
            obs::counter_add(metric::PLAN_CACHE_LOOKUPS, 1);
            let cache = pc.bound.lock().unwrap_or_else(|e| e.into_inner());
            // Borrowed lookup: `Vec<usize>: Borrow<[usize]>`, so a cache
            // hit never allocates a key.
            if let Some(&choice) = cache.get(&g).and_then(|per_cols| per_cols.get(cols)) {
                obs::counter_add(metric::PLAN_CACHE_HITS, 1);
                return choice;
            }
            obs::counter_add(metric::PLAN_CACHE_MISSES, 1);
        }
        let mut best: Option<(Cost, OpId)> = None;
        for op in self.memo.group_ops(g) {
            let c = ctx.op_query_cost(op, cols, &self.marking);
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, op));
            }
        }
        let choice = best.map(|(_, op)| op);
        if let Some(pc) = self.plans {
            pc.bound
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(g)
                .or_default()
                .insert(cols.to_vec(), choice);
        }
        choice
    }

    /// The stored relation backing `g`, if any (base table or MV).
    fn backing_table(&self, g: GroupId) -> Option<&'a str> {
        let g = self.memo.find(g);
        if let Some(t) = self.materialized.get(&g) {
            return Some(t.as_str());
        }
        if self.memo.is_leaf(g) {
            for op in self.memo.group_ops(g) {
                if let OpKind::Scan { table } = &self.memo.op(op).op {
                    return Some(table.as_str());
                }
            }
        }
        None
    }

    /// Index lookup (or filtered scan when no index fits) on a stored
    /// relation.
    fn stored_lookup(
        &self,
        table: &str,
        cols: &[usize],
        key: &[Value],
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let t = self.catalog.table(table)?;
        match t.relation.find_exact_index(cols) {
            // Order-matching index: probe with the key verbatim.
            Some((idx, false)) => Ok(t.relation.lookup(idx, key, io)),
            // Same column set, different order: permute the key once.
            Some((idx, true)) => {
                let remap = index_key_remap(&t.relation, idx, cols)?;
                let probe: Vec<Value> = remap.iter().map(|&i| key[i].clone()).collect();
                Ok(t.relation.lookup(idx, &probe, io))
            }
            // Fallback: scan and filter (charged as a scan).
            None => Ok(filter_binding(t.relation.scan(io), cols, key)),
        }
    }

    /// Batched stored lookups: resolve the index once, probe per key. With
    /// no usable index, *one* physical pass partitions the relation on
    /// `cols`, but every key is still charged a full scan — the §3.6 cost
    /// model prices each posed query independently, and the measured
    /// counters must keep matching the estimates.
    fn stored_lookup_all(
        &self,
        table: &str,
        cols: &[usize],
        keys: &[Vec<Value>],
        io: &mut IoMeter,
    ) -> StorageResult<BTreeMap<Vec<Value>, Bag>> {
        let t = self.catalog.table(table)?;
        let mut out = BTreeMap::new();
        match t.relation.find_exact_index(cols) {
            Some((idx, false)) => {
                for key in keys {
                    out.insert(key.clone(), t.relation.lookup(idx, key, io));
                }
            }
            Some((idx, true)) => {
                // Compute the key permutation once for the whole batch.
                let remap = index_key_remap(&t.relation, idx, cols)?;
                let mut probe = Vec::with_capacity(remap.len());
                for key in keys {
                    probe.clear();
                    probe.extend(remap.iter().map(|&i| key[i].clone()));
                    out.insert(key.clone(), t.relation.lookup(idx, &probe, io));
                }
            }
            None => {
                let pages = t.relation.pages();
                let mut partition = HashIndex::new(cols.to_vec());
                partition.rebuild(t.relation.data());
                for key in keys {
                    io.scan_pages(pages);
                    out.insert(
                        key.clone(),
                        partition.probe(key).cloned().unwrap_or_default(),
                    );
                }
            }
        }
        Ok(out)
    }

    fn query_via_op(
        &self,
        op: OpId,
        cols: &[usize],
        key: &[Value],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        // Borrow the op node rather than cloning it: `OpKind` owns
        // predicate/expression trees, and this runs once per posed query.
        let node = &self.memo.op(op).op;
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => self.stored_lookup(table, cols, key, io),
            OpKind::Select { predicate } => {
                let r = self.query(children[0], cols, key, ctx, io)?;
                filter_pred(&r, predicate)
            }
            OpKind::Distinct => {
                let r = self.query(children[0], cols, key, ctx, io)?;
                Ok(r.iter().map(|(t, _)| (t.clone(), 1)).collect())
            }
            OpKind::Project { exprs } => {
                let mapped: Option<Vec<usize>> = cols
                    .iter()
                    .map(|&c| match exprs.get(c) {
                        Some((ScalarExpr::Col(i), _)) => Some(*i),
                        _ => None,
                    })
                    .collect();
                let input = match mapped {
                    Some(m) => self.query(children[0], &m, key, ctx, io)?,
                    None => self.full_eval(children[0], ctx, io)?,
                };
                let projected = spacetime_algebra::eval::project_bag(&input, exprs)?;
                Ok(filter_binding(&projected, cols, key))
            }
            OpKind::Aggregate { group_by, aggs } => {
                let mapped: Option<Vec<usize>> =
                    cols.iter().map(|&c| group_by.get(c).copied()).collect();
                let input = match mapped {
                    Some(m) => self.query(children[0], &m, key, ctx, io)?,
                    None => self.full_eval(children[0], ctx, io)?,
                };
                let out = aggregate_bag(&input, group_by, aggs)?;
                Ok(filter_binding(&out, cols, key))
            }
            OpKind::Join { condition } => self.query_join(condition, children, cols, key, ctx, io),
        }
    }

    fn query_join(
        &self,
        condition: &JoinCondition,
        children: Vec<GroupId>,
        cols: &[usize],
        key: &[Value],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let (a, b) = (children[0], children[1]);
        let la = self.memo.schema(a).arity();
        let lp: Vec<(usize, Value)> = cols
            .iter()
            .zip(key)
            .filter(|(&c, _)| c < la)
            .map(|(&c, v)| (c, v.clone()))
            .collect();
        let rp: Vec<(usize, Value)> = cols
            .iter()
            .zip(key)
            .filter(|(&c, _)| c >= la)
            .map(|(&c, v)| (c - la, v.clone()))
            .collect();
        let lcols = condition.left_cols();
        let rcols = condition.right_cols();

        // Drive from the bound side; probe the other per distinct join key.
        let (drive_left, outer) = if rp.is_empty() || !lp.is_empty() {
            let (c, k): (Vec<usize>, Vec<Value>) = lp.iter().cloned().unzip();
            (true, self.query(a, &c, &k, ctx, io)?)
        } else {
            let (c, k): (Vec<usize>, Vec<Value>) = rp.iter().cloned().unzip();
            (false, self.query(b, &c, &k, ctx, io)?)
        };

        let (my_cols, other_cols, other_group) = if drive_left {
            (&lcols, &rcols, b)
        } else {
            (&rcols, &lcols, a)
        };
        let mut cache: BTreeMap<Vec<Value>, Bag> = BTreeMap::new();
        let mut out = Bag::new();
        // One probe buffer reused across outer tuples; match bags are
        // borrowed from the cache, never cloned per tuple.
        let mut probe: Vec<Value> = Vec::with_capacity(my_cols.len());
        for (t, c) in outer.iter() {
            probe.clear();
            let mut null = false;
            for &mc in my_cols.iter() {
                let v = t.get(mc).cloned().unwrap_or(Value::Null);
                if v.is_null() {
                    null = true;
                    break;
                }
                probe.push(v);
            }
            if null {
                continue;
            }
            if !cache.contains_key(probe.as_slice()) {
                let m = self.query(other_group, other_cols, &probe, ctx, io)?;
                cache.insert(probe.clone(), m);
            }
            let matches = &cache[probe.as_slice()];
            for (o, oc) in matches.iter() {
                let joined = if drive_left { t.concat(o) } else { o.concat(t) };
                if let Some(res) = &condition.residual {
                    if !res.eval_predicate(&joined)? {
                        continue;
                    }
                }
                out.insert(joined, c * oc);
            }
        }
        Ok(filter_binding(&out, cols, key))
    }

    /// Cheapest full evaluation among the alternatives; mirrors the cost
    /// model by summing children's full-eval costs. Cached when a
    /// [`PlanCache`] is attached.
    fn best_full_op(&self, g: GroupId, ctx: &mut CostCtx<'_>) -> Option<OpId> {
        if let Some(pc) = self.plans {
            obs::counter_add(metric::PLAN_CACHE_LOOKUPS, 1);
            let cache = pc.full.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&choice) = cache.get(&g) {
                obs::counter_add(metric::PLAN_CACHE_HITS, 1);
                return choice;
            }
            obs::counter_add(metric::PLAN_CACHE_MISSES, 1);
        }
        let mut best: Option<(Cost, OpId)> = None;
        for op in self.memo.group_ops(g) {
            let cost: Cost = self
                .memo
                .op_children(op)
                .into_iter()
                .map(|c| ctx.full_eval_cost(c, &self.marking))
                .sum();
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, op));
            }
        }
        let choice = best.map(|(_, op)| op);
        if let Some(pc) = self.plans {
            pc.full.lock().unwrap_or_else(|e| e.into_inner()).insert(g, choice);
        }
        choice
    }

    /// Fully evaluate a group (used when a binding cannot be pushed).
    pub fn full_eval(
        &self,
        g: GroupId,
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let g = self.memo.find(g);
        if let Some(table) = self.backing_table(g) {
            let t = self.catalog.table(table)?;
            return Ok(t.relation.scan(io).clone());
        }
        let Some(op) = self.best_full_op(g, ctx) else {
            return Ok(Bag::new());
        };
        let node = &self.memo.op(op).op;
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => {
                let t = self.catalog.table(table)?;
                Ok(t.relation.scan(io).clone())
            }
            OpKind::Select { predicate } => {
                let input = self.full_eval(children[0], ctx, io)?;
                filter_pred(&input, predicate)
            }
            OpKind::Project { exprs } => {
                let input = self.full_eval(children[0], ctx, io)?;
                spacetime_algebra::eval::project_bag(&input, exprs)
            }
            OpKind::Distinct => {
                let input = self.full_eval(children[0], ctx, io)?;
                Ok(input.iter().map(|(t, _)| (t.clone(), 1)).collect())
            }
            OpKind::Aggregate { group_by, aggs } => {
                let input = self.full_eval(children[0], ctx, io)?;
                aggregate_bag(&input, group_by, aggs)
            }
            OpKind::Join { condition } => {
                let left = self.full_eval(children[0], ctx, io)?;
                let right = self.full_eval(children[1], ctx, io)?;
                join_bags(&left, &right, condition)
            }
        }
    }
}

/// The positions in `cols` of each of index `idx`'s key columns. An exact
/// index's key columns are a permutation of `cols` by definition; a
/// mismatch is an index-bookkeeping bug surfaced as a typed error rather
/// than an indexing panic.
fn index_key_remap(
    rel: &spacetime_storage::Relation,
    idx: usize,
    cols: &[usize],
) -> StorageResult<Vec<usize>> {
    rel.index_key_cols(idx)
        .iter()
        .map(|c| {
            cols.iter().position(|x| x == c).ok_or_else(|| {
                spacetime_storage::StorageError::Internal(
                    "exact index key columns not a permutation of the probe columns".into(),
                )
            })
        })
        .collect()
}

/// Keep tuples whose `cols` equal `key`.
pub fn filter_binding(bag: &Bag, cols: &[usize], key: &[Value]) -> Bag {
    bag.iter()
        .filter(|(t, _)| {
            cols.iter()
                .zip(key)
                .all(|(&c, kv)| t.get(c).map_or(kv.is_null(), |v| v == kv))
        })
        .map(|(t, c)| (t.clone(), c))
        .collect()
}

fn filter_pred(bag: &Bag, predicate: &ScalarExpr) -> StorageResult<Bag> {
    let mut out = Bag::new();
    for (t, c) in bag.iter() {
        if predicate.eval_predicate(t)? {
            out.insert(t.clone(), c);
        }
    }
    Ok(out)
}

//! Runtime evaluation of posed queries.
//!
//! During delta propagation, queries are posed on equivalence nodes
//! (§2.2). This module *executes* them, following the same plan space the
//! cost model priced: a query on a base relation or materialized view is
//! an index lookup; a query on any other node is answered through the
//! operation-node alternative with the lowest estimated cost, pushing the
//! binding down. Executing the plans the optimizer priced is what makes
//! the engine's *measured* page I/Os comparable to the *estimated* ones.

use std::collections::BTreeMap;

use spacetime_algebra::eval::{aggregate_bag, join_bags};
use spacetime_algebra::{JoinCondition, OpKind, ScalarExpr};
use spacetime_cost::{Cost, CostCtx, Marking};
use spacetime_memo::{GroupId, Memo, OpId};
use spacetime_storage::{Bag, Catalog, IoMeter, StorageResult, Value};

/// Executes queries over the DAG against the catalog.
pub struct QueryExec<'a> {
    /// The expression DAG.
    pub memo: &'a Memo,
    /// Storage (base tables and materialized views).
    pub catalog: &'a Catalog,
    /// Materialized groups → backing table name.
    pub materialized: BTreeMap<GroupId, String>,
    /// The same set as a cost-model marking.
    pub marking: Marking,
}

impl<'a> QueryExec<'a> {
    /// Build an executor for a set of materializations.
    pub fn new(
        memo: &'a Memo,
        catalog: &'a Catalog,
        materialized: BTreeMap<GroupId, String>,
    ) -> Self {
        let marking: Marking = materialized.keys().copied().collect();
        QueryExec {
            memo,
            catalog,
            materialized,
            marking,
        }
    }

    /// All tuples of `g` whose `cols` equal `key`.
    pub fn query(
        &self,
        g: GroupId,
        cols: &[usize],
        key: &[Value],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let g = self.memo.find(g);
        if cols.is_empty() {
            return self.full_eval(g, ctx, io);
        }
        if let Some(table) = self.backing_table(g) {
            return self.stored_lookup(&table, cols, key, io);
        }
        // Pick the cheapest alternative, exactly as the optimizer did.
        let mut best: Option<(Cost, OpId)> = None;
        for op in self.memo.group_ops(g) {
            let c = ctx.op_query_cost(op, cols, &self.marking);
            if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                best = Some((c, op));
            }
        }
        let Some((_, op)) = best else {
            return Ok(Bag::new());
        };
        self.query_via_op(op, cols, key, ctx, io)
    }

    /// The stored relation backing `g`, if any (base table or MV).
    fn backing_table(&self, g: GroupId) -> Option<String> {
        let g = self.memo.find(g);
        if let Some(t) = self.materialized.get(&g) {
            return Some(t.clone());
        }
        if self.memo.is_leaf(g) {
            for op in self.memo.group_ops(g) {
                if let OpKind::Scan { table } = &self.memo.op(op).op {
                    return Some(table.clone());
                }
            }
        }
        None
    }

    /// Index lookup (or filtered scan when no index fits) on a stored
    /// relation.
    fn stored_lookup(
        &self,
        table: &str,
        cols: &[usize],
        key: &[Value],
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let t = self.catalog.table(table)?;
        // Exact-column index?
        for (idx, def) in t.relation.index_defs().into_iter().enumerate() {
            if def.len() == cols.len() && def.iter().all(|c| cols.contains(c)) {
                let probe: Vec<Value> = def
                    .iter()
                    .map(|c| key[cols.iter().position(|x| x == c).expect("subset")].clone())
                    .collect();
                return Ok(t.relation.lookup(idx, &probe, io));
            }
        }
        // Fallback: scan and filter (charged as a scan).
        let all = t.relation.scan(io).clone();
        Ok(filter_binding(&all, cols, key))
    }

    fn query_via_op(
        &self,
        op: OpId,
        cols: &[usize],
        key: &[Value],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let node = self.memo.op(op).op.clone();
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => self.stored_lookup(&table, cols, key, io),
            OpKind::Select { predicate } => {
                let r = self.query(children[0], cols, key, ctx, io)?;
                filter_pred(&r, &predicate)
            }
            OpKind::Distinct => {
                let r = self.query(children[0], cols, key, ctx, io)?;
                Ok(r.iter().map(|(t, _)| (t.clone(), 1)).collect())
            }
            OpKind::Project { exprs } => {
                let mapped: Option<Vec<usize>> = cols
                    .iter()
                    .map(|&c| match exprs.get(c) {
                        Some((ScalarExpr::Col(i), _)) => Some(*i),
                        _ => None,
                    })
                    .collect();
                let input = match mapped {
                    Some(m) => self.query(children[0], &m, key, ctx, io)?,
                    None => self.full_eval(children[0], ctx, io)?,
                };
                let projected = spacetime_algebra::eval::project_bag(&input, &exprs)?;
                Ok(filter_binding(&projected, cols, key))
            }
            OpKind::Aggregate { group_by, aggs } => {
                let mapped: Option<Vec<usize>> =
                    cols.iter().map(|&c| group_by.get(c).copied()).collect();
                let input = match mapped {
                    Some(m) => self.query(children[0], &m, key, ctx, io)?,
                    None => self.full_eval(children[0], ctx, io)?,
                };
                let out = aggregate_bag(&input, &group_by, &aggs)?;
                Ok(filter_binding(&out, cols, key))
            }
            OpKind::Join { condition } => self.query_join(&condition, children, cols, key, ctx, io),
        }
    }

    fn query_join(
        &self,
        condition: &JoinCondition,
        children: Vec<GroupId>,
        cols: &[usize],
        key: &[Value],
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let (a, b) = (children[0], children[1]);
        let la = self.memo.schema(a).arity();
        let lp: Vec<(usize, Value)> = cols
            .iter()
            .zip(key)
            .filter(|(&c, _)| c < la)
            .map(|(&c, v)| (c, v.clone()))
            .collect();
        let rp: Vec<(usize, Value)> = cols
            .iter()
            .zip(key)
            .filter(|(&c, _)| c >= la)
            .map(|(&c, v)| (c - la, v.clone()))
            .collect();
        let lcols = condition.left_cols();
        let rcols = condition.right_cols();

        // Drive from the bound side; probe the other per distinct join key.
        let (drive_left, outer) = if rp.is_empty() || !lp.is_empty() {
            let (c, k): (Vec<usize>, Vec<Value>) = lp.iter().cloned().unzip();
            (true, self.query(a, &c, &k, ctx, io)?)
        } else {
            let (c, k): (Vec<usize>, Vec<Value>) = rp.iter().cloned().unzip();
            (false, self.query(b, &c, &k, ctx, io)?)
        };

        let mut cache: BTreeMap<Vec<Value>, Bag> = BTreeMap::new();
        let mut out = Bag::new();
        for (t, c) in outer.iter() {
            let (my_cols, other_cols, other_group) = if drive_left {
                (&lcols, &rcols, b)
            } else {
                (&rcols, &lcols, a)
            };
            let mut probe = Vec::with_capacity(my_cols.len());
            let mut null = false;
            for &mc in my_cols.iter() {
                let v = t.get(mc).cloned().unwrap_or(Value::Null);
                if v.is_null() {
                    null = true;
                    break;
                }
                probe.push(v);
            }
            if null {
                continue;
            }
            let matches = match cache.get(&probe) {
                Some(m) => m.clone(),
                None => {
                    let m = self.query(other_group, other_cols, &probe, ctx, io)?;
                    cache.insert(probe.clone(), m.clone());
                    m
                }
            };
            for (o, oc) in matches.iter() {
                let joined = if drive_left { t.concat(o) } else { o.concat(t) };
                if let Some(res) = &condition.residual {
                    if !res.eval_predicate(&joined)? {
                        continue;
                    }
                }
                out.insert(joined, c * oc);
            }
        }
        Ok(filter_binding(&out, cols, key))
    }

    /// Fully evaluate a group (used when a binding cannot be pushed).
    pub fn full_eval(
        &self,
        g: GroupId,
        ctx: &mut CostCtx<'_>,
        io: &mut IoMeter,
    ) -> StorageResult<Bag> {
        let g = self.memo.find(g);
        if let Some(table) = self.backing_table(g) {
            let t = self.catalog.table(&table)?;
            return Ok(t.relation.scan(io).clone());
        }
        // Cheapest full evaluation among the alternatives; mirror the cost
        // model by summing children's full-eval costs.
        let mut best: Option<(Cost, OpId)> = None;
        for op in self.memo.group_ops(g) {
            let cost: Cost = self
                .memo
                .op_children(op)
                .into_iter()
                .map(|c| ctx.full_eval_cost(c, &self.marking))
                .sum();
            if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                best = Some((cost, op));
            }
        }
        let Some((_, op)) = best else {
            return Ok(Bag::new());
        };
        let node = self.memo.op(op).op.clone();
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => {
                let t = self.catalog.table(&table)?;
                Ok(t.relation.scan(io).clone())
            }
            OpKind::Select { predicate } => {
                let input = self.full_eval(children[0], ctx, io)?;
                filter_pred(&input, &predicate)
            }
            OpKind::Project { exprs } => {
                let input = self.full_eval(children[0], ctx, io)?;
                spacetime_algebra::eval::project_bag(&input, &exprs)
            }
            OpKind::Distinct => {
                let input = self.full_eval(children[0], ctx, io)?;
                Ok(input.iter().map(|(t, _)| (t.clone(), 1)).collect())
            }
            OpKind::Aggregate { group_by, aggs } => {
                let input = self.full_eval(children[0], ctx, io)?;
                aggregate_bag(&input, &group_by, &aggs)
            }
            OpKind::Join { condition } => {
                let left = self.full_eval(children[0], ctx, io)?;
                let right = self.full_eval(children[1], ctx, io)?;
                join_bags(&left, &right, &condition)
            }
        }
    }
}

/// Keep tuples whose `cols` equal `key`.
pub fn filter_binding(bag: &Bag, cols: &[usize], key: &[Value]) -> Bag {
    bag.iter()
        .filter(|(t, _)| {
            cols.iter()
                .zip(key)
                .all(|(&c, kv)| t.get(c).map_or(kv.is_null(), |v| v == kv))
        })
        .map(|(t, c)| (t.clone(), c))
        .collect()
}

fn filter_pred(bag: &Bag, predicate: &ScalarExpr) -> StorageResult<Bag> {
    let mut out = Bag::new();
    for (t, c) in bag.iter() {
        if predicate.eval_predicate(t)? {
            out.insert(t.clone(), c);
        }
    }
    Ok(out)
}

//! SQL-92 assertions as empty views (§1, §6).
//!
//! > *"These integrity constraints can be modeled as materialized views
//! > whose results are required to be empty. … An assertion can be modeled
//! > as a materialized view, and the problem then becomes one of computing
//! > the incremental update to the materialized view."*
//!
//! An [`Assertion`] names an engine-maintained view; the constraint holds
//! while that view's materialization is empty. Because the view (and
//! whatever auxiliary views the optimizer picked) is incrementally
//! maintained, *checking* the constraint after an update is free — the
//! interesting cost, which the paper optimizes, is maintaining it.

use spacetime_storage::{Bag, Catalog, StorageResult};

use crate::engine::{IvmEngine, PlannedUpdate};

/// A named integrity constraint backed by a maintained view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assertion {
    /// The assertion's name (e.g. the paper's `DeptConstraint`).
    pub name: String,
    /// The backing view's name (the engine root's table).
    pub view: String,
}

/// A violation: the assertion plus sample witness tuples.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated assertion's name.
    pub assertion: String,
    /// Rendered witness tuples (up to a small sample).
    pub witnesses: Vec<String>,
}

impl Assertion {
    /// Check the assertion against current state.
    pub fn check(&self, catalog: &Catalog) -> StorageResult<Option<Violation>> {
        let data = catalog.table(&self.view)?.relation.data();
        Ok(violation_from(&self.name, data))
    }

    /// Check what the assertion's view would hold *after* a planned update
    /// commits — this is how the database aborts violating transactions
    /// without applying them.
    pub fn check_planned(
        &self,
        catalog: &Catalog,
        engine: &IvmEngine,
        planned: &PlannedUpdate,
    ) -> StorageResult<Option<Violation>> {
        let mut future = catalog.table(&self.view)?.relation.data().clone();
        if let Some(delta) = planned.root_delta(engine.root) {
            delta.apply_to(&mut future)?;
        }
        Ok(violation_from(&self.name, &future))
    }
}

fn violation_from(name: &str, data: &Bag) -> Option<Violation> {
    if data.is_empty() {
        return None;
    }
    let witnesses: Vec<String> = data
        .sorted()
        .into_iter()
        .take(3)
        .map(|(t, _)| t.to_string())
        .collect();
    Some(Violation {
        assertion: name.to_string(),
        witnesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_storage::{tuple, DataType, Schema};

    #[test]
    fn empty_view_satisfies() {
        let mut cat = Catalog::new();
        cat.create_materialized("V", Schema::of_table("V", &[("x", DataType::Int)]))
            .unwrap();
        let a = Assertion {
            name: "C".into(),
            view: "V".into(),
        };
        assert!(a.check(&cat).unwrap().is_none());
    }

    #[test]
    fn nonempty_view_reports_witnesses() {
        let mut cat = Catalog::new();
        cat.create_materialized("V", Schema::of_table("V", &[("x", DataType::Int)]))
            .unwrap();
        let mut io = spacetime_storage::IoMeter::new();
        for i in 0..5 {
            cat.table_mut("V")
                .unwrap()
                .relation
                .insert(tuple![i], 1, &mut io)
                .unwrap();
        }
        let a = Assertion {
            name: "C".into(),
            view: "V".into(),
        };
        let v = a.check(&cat).unwrap().unwrap();
        assert_eq!(v.assertion, "C");
        assert_eq!(v.witnesses.len(), 3, "sample capped at 3");
    }
}

//! The footprint-based transaction scheduler over a [`ShardedDatabase`].
//!
//! Each transaction (a list of per-table deltas) is routed to its **shard
//! footprint** — the set of shard domains its delta keys touch. The
//! scheduler admits transactions in waves: scanning the queue in admission
//! order, a transaction is admitted if its footprint is disjoint from
//! everything already admitted this wave *and* from every deferred
//! transaction's footprint (so per-shard order is preserved); otherwise it
//! waits for a later wave. Admitted transactions run concurrently on a
//! [`PipelinePool`]; a wave is a barrier.
//!
//! **Cross-shard commit protocol.** A transaction whose footprint spans
//! several shards commits them one at a time in ascending shard order,
//! each through the shard's own all-or-nothing transaction commit. Before
//! each shard commits, its catalog is backed up (an `Arc` refcount bump —
//! the PR 4 immediate-mode mechanism generalized across shards); if any
//! later shard fails — a typed error, an injected fault, or a contained
//! panic — every already-committed shard is restored from its backup, in
//! reverse order, before the error surfaces. Restoration is a pointer
//! swap and cannot itself fail, so the transaction is all-or-nothing
//! across its whole footprint.
//!
//! **Determinism invariant.** [`TxnScheduler::run`] is bit-identical to
//! [`TxnScheduler::run_serial`] (one transaction at a time, admission
//! order) in every table of every shard and every per-transaction
//! [`UpdateReport`]:
//!
//! 1. transactions sharing a shard execute in admission order (an
//!    admitted transaction blocks the shard for the rest of the wave; a
//!    deferred transaction blocks it for every *later* queue position,
//!    and deferral preserves queue order across waves);
//! 2. transactions in one wave have pairwise-disjoint footprints, so they
//!    read and write disjoint shard sets — they commute;
//! 3. a transaction's report and effects depend only on the pre-state of
//!    the shards in its footprint.
//!
//! Property tests sweep this at pool widths 1/2/4/8 the same way
//! `prop_pipeline.rs` proves Sequential ≡ Parallel.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use spacetime_delta::Delta;
use spacetime_obs::{self as obs, names as metric, TraceNode};

use crate::database::Database;
use crate::engine::UpdateReport;
use crate::pipeline::{panic_message, PipelinePool};
use crate::shard::ShardedDatabase;
use crate::{IvmError, IvmResult};

/// One transaction: per-table deltas applied atomically, in order.
pub type Txn = Vec<(String, Delta)>;

/// Counters describing one scheduler run. Mirrors the `spacetime_sched_*`
/// metrics exactly, so benchmarks can assert the books balance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Transactions accepted (including empty and mis-routed ones).
    pub txns: u64,
    /// Transactions that ran in a wave of two or more (i.e. concurrently
    /// with at least one disjoint-footprint transaction).
    pub admitted_concurrent: u64,
    /// Deferrals: one per wave a transaction sat out behind a conflicting
    /// footprint.
    pub conflict_deferrals: u64,
    /// Transactions whose footprint spanned more than one shard.
    pub cross_shard_txns: u64,
    /// Admission waves dispatched.
    pub waves: u64,
    /// The largest single wave (transactions dispatched together).
    pub max_wave_width: u64,
    /// Dispatched transactions that committed.
    pub committed: u64,
    /// Dispatched transactions that rolled back (assertion violation,
    /// injected fault, or contained panic).
    pub aborted: u64,
    /// Sum of footprint sizes over dispatched transactions — a
    /// cross-shard transaction counts once per participating shard.
    /// Balances against the `spacetime_shard_txns_total` labeled counter.
    pub shard_participations: u64,
}

impl SchedStats {
    /// Fold another run's counters into these (benchmarks accumulate
    /// across shard-count sweeps to balance against the metrics plane).
    pub fn absorb(&mut self, other: &SchedStats) {
        self.txns += other.txns;
        self.admitted_concurrent += other.admitted_concurrent;
        self.conflict_deferrals += other.conflict_deferrals;
        self.cross_shard_txns += other.cross_shard_txns;
        self.waves += other.waves;
        self.max_wave_width = self.max_wave_width.max(other.max_wave_width);
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.shard_participations += other.shard_participations;
    }
}

/// The outcome of a scheduler run, slot-aligned with the admitted
/// transaction list.
#[derive(Debug)]
pub struct SchedOutcome {
    /// Per-transaction results in admission order: the merged maintenance
    /// report, or the error that rolled the transaction back.
    pub results: Vec<IvmResult<UpdateReport>>,
    /// Per-transaction latency (dispatch → commit, pool queueing
    /// included), admission order. Zero for transactions never dispatched
    /// (empty footprint or routing failure).
    pub latencies_ns: Vec<u64>,
    /// Scheduler counters for this run.
    pub stats: SchedStats,
    /// Per-transaction spans, slot-aligned with `results`; `None` unless
    /// tracing is on (see [`ShardedDatabase::set_tracing`]) and the
    /// transaction committed. A single-shard transaction's span **is**
    /// its shard's `transaction` trace (structurally identical to an
    /// unsharded [`Database::apply_transaction`] trace — the shard id
    /// rides along as a non-structural note); a cross-shard transaction
    /// gets a structural `cross-shard commit` root wrapping each
    /// participant's trace in ascending shard order, plus a `wal
    /// global-commit` child when write-ahead logged. Assembly is
    /// deterministic: concurrent runs and serial replays produce
    /// structurally identical spans.
    pub traces: Vec<Option<TraceNode>>,
    /// The whole run as one span — `schedule` → per-wave `wave` nodes →
    /// per-transaction spans — when tracing is on. Wave structure
    /// legitimately differs between [`TxnScheduler::run`] and
    /// [`TxnScheduler::run_serial`] (serial replay dispatches one
    /// transaction per wave), so identity tests compare `traces`, not
    /// this.
    pub trace: Option<TraceNode>,
}

#[cfg(feature = "durability")]
use crate::durability::ShardWals;
/// Uninhabited stand-in so `apply_parts` keeps one signature when the
/// `durability` feature (and with it the real `ShardWals`) is off: an
/// `Option<Arc<…>>` of this type can only ever be `None`.
#[cfg(not(feature = "durability"))]
type ShardWals = std::convert::Infallible;

/// A scheduler bound to a sharded database and a worker pool.
pub struct TxnScheduler<'a> {
    db: &'a ShardedDatabase,
    pool: Arc<PipelinePool>,
    /// Per-shard WAL sessions + global commit log for durable serving.
    wals: Option<Arc<ShardWals>>,
}

/// A transaction's routed form: per-shard sub-transactions in ascending
/// shard order (the footprint is the shard ids).
type ShardParts = Vec<(usize, Txn)>;

impl<'a> TxnScheduler<'a> {
    /// A scheduler dispatching onto `pool`. Pool width caps how many
    /// disjoint transactions actually run at once; admission logic is
    /// width-independent.
    pub fn new(db: &'a ShardedDatabase, pool: Arc<PipelinePool>) -> Self {
        TxnScheduler {
            db,
            pool,
            wals: None,
        }
    }

    /// A durable scheduler: every transaction is write-ahead logged on
    /// the shards it touches (cross-shard transactions through the 2PC
    /// global commit record) before its results are reported. `wals`
    /// must come from the [`crate::durability::DurableSharded`] that
    /// owns `db`'s logs.
    #[cfg(feature = "durability")]
    pub fn with_wals(
        db: &'a ShardedDatabase,
        pool: Arc<PipelinePool>,
        wals: Arc<ShardWals>,
    ) -> Self {
        TxnScheduler {
            db,
            pool,
            wals: Some(wals),
        }
    }

    /// The sharded database this scheduler serves.
    pub fn db(&self) -> &ShardedDatabase {
        self.db
    }

    /// Route one transaction to its per-shard sub-transactions.
    fn route(&self, txn: &Txn) -> IvmResult<ShardParts> {
        let mut per: Vec<Txn> = (0..self.db.n_shards()).map(|_| Txn::new()).collect();
        for (table, delta) in txn {
            for (s, d) in self.db.route_delta(table, delta)? {
                per[s].push((table.clone(), d));
            }
        }
        Ok(per
            .into_iter()
            .enumerate()
            .filter(|(_, t)| !t.is_empty())
            .collect())
    }

    /// Admit and run every transaction, concurrently where footprints
    /// allow. Per-transaction failures (assertion violations, injected
    /// faults, contained panics) land in the corresponding result slot —
    /// the transaction rolled back, the shards are consistent, and the
    /// run continues. `Err` from `run` itself means scheduler
    /// infrastructure failed (e.g. the pool's channel died).
    pub fn run(&self, txns: &[Txn]) -> IvmResult<SchedOutcome> {
        self.run_inner(txns, true)
    }

    /// The determinism oracle: the same transactions, one at a time, in
    /// admission order, on the calling thread. Bit-identical results and
    /// shard state to [`TxnScheduler::run`]; `stats` and latencies
    /// describe the serial execution instead (no waves, no concurrency),
    /// and no scheduler metrics are recorded — a replay check must not
    /// double-count the books.
    pub fn run_serial(&self, txns: &[Txn]) -> IvmResult<SchedOutcome> {
        self.run_inner(txns, false)
    }

    fn run_inner(&self, txns: &[Txn], concurrent: bool) -> IvmResult<SchedOutcome> {
        let n = txns.len();
        let mut stats = SchedStats {
            txns: n as u64,
            ..SchedStats::default()
        };
        if concurrent {
            obs::counter_add(metric::SCHED_TXNS, n as u64);
        }
        let mut results: Vec<Option<IvmResult<UpdateReport>>> = (0..n).map(|_| None).collect();
        let mut latencies: Vec<u64> = vec![0; n];
        let tracing = self.db.tracing();
        let mut traces: Vec<Option<TraceNode>> = (0..n).map(|_| None).collect();
        let mut run_trace = tracing.then(|| {
            let mut t = TraceNode::new("schedule")
                .with_field("txns", n)
                .with_field("shards", self.db.n_shards());
            t.push_note(if concurrent { "concurrent" } else { "serial replay" });
            t
        });
        // Route everything up front; the footprint drives admission.
        let mut parts: Vec<Option<ShardParts>> = Vec::with_capacity(n);
        let mut pending: Vec<usize> = Vec::with_capacity(n);
        for (i, txn) in txns.iter().enumerate() {
            match self.route(txn) {
                Ok(p) if p.is_empty() => {
                    // Nothing to do; completes immediately.
                    results[i] = Some(Ok(UpdateReport::default()));
                    parts.push(None);
                }
                Ok(p) => {
                    if p.len() > 1 {
                        stats.cross_shard_txns += 1;
                        if concurrent {
                            obs::counter_add(metric::SCHED_CROSS_SHARD_TXNS, 1);
                        }
                    }
                    if concurrent {
                        obs::gauge_add(metric::SCHED_QUEUE_DEPTH, 1.0);
                        for (s, _) in &p {
                            obs::gauge_add_labeled(
                                metric::SCHED_SHARD_QUEUE_DEPTH,
                                metric::shard_label(*s),
                                1.0,
                            );
                        }
                    }
                    pending.push(i);
                    parts.push(Some(p));
                }
                Err(e) => {
                    results[i] = Some(Err(e));
                    parts.push(None);
                }
            }
        }
        while !pending.is_empty() {
            let mut busy: BTreeSet<usize> = BTreeSet::new();
            let mut blocked: BTreeSet<usize> = BTreeSet::new();
            let mut batch: Vec<usize> = Vec::new();
            let mut rest: Vec<usize> = Vec::new();
            let mut wave_deferrals: u64 = 0;
            for &i in &pending {
                let Some(fp) = parts[i].as_ref() else {
                    // A routing-bookkeeping bug degrades to one failed
                    // transaction, not a poisoned scheduler.
                    results[i] = Some(Err(IvmError::Internal(
                        "scheduler invariant broken: pending transaction has no routed parts"
                            .into(),
                    )));
                    if concurrent {
                        obs::gauge_add(metric::SCHED_QUEUE_DEPTH, -1.0);
                        for s in txn_footprint(txns, self.db, i) {
                            obs::gauge_add_labeled(
                                metric::SCHED_SHARD_QUEUE_DEPTH,
                                metric::shard_label(s),
                                -1.0,
                            );
                        }
                    }
                    continue;
                };
                let free = fp
                    .iter()
                    .all(|(s, _)| !busy.contains(s) && !blocked.contains(s));
                if free && (concurrent || batch.is_empty()) {
                    busy.extend(fp.iter().map(|(s, _)| *s));
                    batch.push(i);
                } else {
                    if free {
                        // Serial replay: everything after the first
                        // transaction waits, with no conflict implied.
                        rest.push(i);
                        continue;
                    }
                    blocked.extend(fp.iter().map(|(s, _)| *s));
                    stats.conflict_deferrals += 1;
                    wave_deferrals += 1;
                    rest.push(i);
                }
            }
            stats.waves += 1;
            stats.max_wave_width = stats.max_wave_width.max(batch.len() as u64);
            if concurrent {
                // Deferral events are O(queue²) on a hot admission queue;
                // one batched add per wave keeps the recorder off the scan.
                if wave_deferrals > 0 {
                    obs::counter_add(metric::SCHED_CONFLICT_SERIALIZED, wave_deferrals);
                }
                obs::counter_add(metric::SCHED_WAVES, 1);
                obs::counter_add_labeled(
                    metric::SCHED_WAVE_WIDTHS,
                    metric::wave_width_label(batch.len()),
                    1,
                );
                if batch.len() > 1 {
                    obs::counter_add(metric::SCHED_ADMITTED_CONCURRENT, batch.len() as u64);
                    stats.admitted_concurrent += batch.len() as u64;
                }
            }
            let t_wave = Instant::now();
            let cells = self.db.cells();
            type TaskOut = (IvmResult<UpdateReport>, u64, Option<TraceNode>);
            let mut tasks: Vec<Box<dyn FnOnce() -> TaskOut + Send>> =
                Vec::with_capacity(batch.len());
            let mut dispatched: Vec<usize> = Vec::with_capacity(batch.len());
            // Footprints of the dispatched transactions, captured before
            // the routed parts move into the task closures (the outcome
            // loop needs them for gauges, labels, and stats).
            let mut fps: Vec<Vec<usize>> = Vec::with_capacity(batch.len());
            for &i in &batch {
                let Some(p) = parts[i].take() else {
                    // Same degradation as above: one failed transaction,
                    // and the rest of the wave still runs.
                    results[i] = Some(Err(IvmError::Internal(
                        "scheduler invariant broken: admitted transaction has no routed parts"
                            .into(),
                    )));
                    if concurrent {
                        obs::gauge_add(metric::SCHED_QUEUE_DEPTH, -1.0);
                        for s in txn_footprint(txns, self.db, i) {
                            obs::gauge_add_labeled(
                                metric::SCHED_SHARD_QUEUE_DEPTH,
                                metric::shard_label(s),
                                -1.0,
                            );
                        }
                    }
                    continue;
                };
                let fp: Vec<usize> = p.iter().map(|(s, _)| *s).collect();
                if concurrent {
                    obs::flight::record("txn_admitted", || {
                        format!("slot {i} shards {fp:?}")
                    });
                }
                let cells: Vec<Arc<Mutex<Database>>> = cells.to_vec();
                let wals = self.wals.clone();
                let t0 = Instant::now();
                tasks.push(Box::new(move || {
                    let (r, tr) = apply_parts(&cells, &p, wals.as_deref());
                    (r, t0.elapsed().as_nanos() as u64, tr)
                }));
                dispatched.push(i);
                fps.push(fp);
            }
            let outcomes = if concurrent {
                self.pool.run_outcomes(tasks)?
            } else {
                // Inline, but still panic-contained like the pool's path.
                tasks
                    .into_iter()
                    .map(|t| catch_unwind(AssertUnwindSafe(t)).map_err(|p| panic_message(p.as_ref())))
                    .collect()
            };
            for (k, outcome) in outcomes.into_iter().enumerate() {
                let i = dispatched[k];
                match outcome {
                    Ok((r, ns, tr)) => {
                        results[i] = Some(r);
                        latencies[i] = ns;
                        traces[i] = tr;
                    }
                    Err(message) => {
                        // The dispatch itself panicked (e.g. the
                        // `ivm::pool_dispatch` failpoint) before the task
                        // body ran; the shards were never touched.
                        results[i] = Some(Err(IvmError::TaskPanicked { message }));
                        latencies[i] = t_wave.elapsed().as_nanos() as u64;
                    }
                }
                let fp = &fps[k];
                stats.shard_participations += fp.len() as u64;
                let ok = matches!(results[i], Some(Ok(_)));
                if ok {
                    stats.committed += 1;
                } else {
                    stats.aborted += 1;
                }
                if concurrent {
                    for &s in fp {
                        obs::counter_add_labeled(metric::SHARD_TXNS, metric::shard_label(s), 1);
                    }
                    obs::counter_add_labeled(
                        metric::SCHED_TXN_OUTCOMES,
                        if ok {
                            metric::LABEL_OUTCOME_COMMITTED
                        } else {
                            metric::LABEL_OUTCOME_ABORTED
                        },
                        1,
                    );
                    if fp.len() > 1 {
                        obs::counter_add(
                            if ok {
                                metric::SCHED_CROSS_SHARD_COMMITS
                            } else {
                                metric::SCHED_CROSS_SHARD_ABORTS
                            },
                            1,
                        );
                    }
                    obs::flight::record(
                        if ok { "txn_committed" } else { "txn_aborted" },
                        || format!("slot {i} shards {fp:?}"),
                    );
                    obs::gauge_add(metric::SCHED_QUEUE_DEPTH, -1.0);
                    for &s in fp {
                        obs::gauge_add_labeled(
                            metric::SCHED_SHARD_QUEUE_DEPTH,
                            metric::shard_label(s),
                            -1.0,
                        );
                    }
                }
            }
            if let Some(run) = run_trace.as_mut() {
                let mut wave_node = TraceNode::new("wave").with_field("width", dispatched.len());
                for &i in &dispatched {
                    let mut txn_node = TraceNode::new("txn").with_field("slot", i);
                    match &traces[i] {
                        Some(t) => txn_node.push_child(t.clone()),
                        None => txn_node.push_note("rolled back or untraced"),
                    }
                    wave_node.push_child(txn_node);
                }
                run.push_child(wave_node);
            }
            pending = rest;
        }
        let results = results
            .into_iter()
            .map(|r| r.ok_or_else(|| IvmError::Internal("a transaction was never run".into())))
            .collect::<IvmResult<Vec<_>>>()?;
        if let Some(run) = run_trace.as_mut() {
            run.push_field("waves", stats.waves);
        }
        Ok(SchedOutcome {
            results,
            latencies_ns: latencies,
            stats,
            traces,
            trace: run_trace,
        })
    }
}

/// Re-derive a dispatched transaction's footprint for gauge drain (its
/// routed parts were consumed by the task closure). Routing is
/// deterministic, so this matches what was incremented; a routing error
/// here is impossible for a transaction that routed cleanly before.
fn txn_footprint(txns: &[Txn], db: &ShardedDatabase, i: usize) -> Vec<usize> {
    let mut fp: BTreeSet<usize> = BTreeSet::new();
    for (table, delta) in &txns[i] {
        if let Ok(parts) = db.route_delta(table, delta) {
            fp.extend(parts.into_iter().map(|(s, _)| s));
        }
    }
    fp.into_iter().collect()
}

/// Apply one transaction's per-shard sub-transactions: the cross-shard
/// commit protocol (module docs). Single-shard transactions take the same
/// path with a one-element footprint — backup, commit, done.
///
/// With `wals` present every participant is write-ahead logged: `begin +
/// deltas` (plus `prepared` for cross-shard transactions) before its
/// in-memory apply, the commit record after. A cross-shard transaction's
/// atomic commit point is the global commit record appended *after* every
/// participant applied and flushed — recovery aborts prepared
/// participants whose global record is absent, which is exactly what the
/// in-memory rollback below converges to.
///
/// The second return is the transaction's assembled span when tracing is
/// on and the transaction committed (see [`SchedOutcome::traces`] for the
/// shape contract); a rolled-back transaction leaves no trace, matching
/// [`Database::apply_transaction`].
fn apply_parts(
    cells: &[Arc<Mutex<Database>>],
    parts: &ShardParts,
    wals: Option<&ShardWals>,
) -> (IvmResult<UpdateReport>, Option<TraceNode>) {
    #[cfg(not(feature = "durability"))]
    let _ = wals; // uninhabited: always `None` without the feature
    #[cfg(feature = "durability")]
    let gid: Option<u64> = match wals {
        Some(w) if parts.len() > 1 => Some(w.alloc_gid()),
        _ => None,
    };
    let mut committed: Vec<(usize, spacetime_storage::Catalog, Option<UpdateReport>)> = Vec::new();
    let mut combined = UpdateReport::default();
    let mut failure: Option<IvmError> = None;
    // Per-shard transaction traces, collected in parts order (ascending
    // shard id) so assembly is deterministic regardless of scheduling.
    let mut shard_traces: Vec<(usize, TraceNode)> = Vec::new();
    for (shard, updates) in parts {
        let mut db = cells[*shard].lock().unwrap_or_else(|e| e.into_inner());
        let backup = db.catalog.clone();
        let prior_report = db.last_report.clone();
        #[cfg(feature = "durability")]
        let wal_txn: Option<u64> = match wals {
            Some(w) => match w.begin_shard(*shard, gid, updates) {
                Ok(id) => Some(id),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            },
            None => None,
        };
        let out = catch_unwind(AssertUnwindSafe(|| db.apply_transaction(updates.clone())));
        match out {
            Ok(Ok(r)) => {
                #[cfg(feature = "durability")]
                if let (Some(w), Some(txn_id), None) = (wals, wal_txn, gid) {
                    // Single-shard durable commit point. If the record
                    // cannot be written, memory must not run ahead of
                    // the log: restore and fail the transaction.
                    if let Err(e) = w.commit_shard(*shard, txn_id) {
                        db.catalog = backup;
                        db.last_report = prior_report;
                        failure = Some(e);
                        break;
                    }
                }
                combined.merge(&r);
                if let Some(t) = db.take_trace() {
                    shard_traces.push((*shard, t));
                }
                committed.push((*shard, backup, prior_report));
            }
            Ok(Err(e)) => {
                // The shard's own transaction commit already rolled back.
                failure = Some(e);
                break;
            }
            Err(p) => {
                // A panic that unwound `apply_transaction` bypassed its
                // error-path rollback; the backup restores this shard.
                db.catalog = backup;
                db.last_report = prior_report;
                failure = Some(IvmError::TaskPanicked {
                    message: panic_message(p.as_ref()),
                });
                break;
            }
        }
    }
    #[cfg(feature = "durability")]
    if failure.is_none() {
        if let (Some(w), Some(g)) = (wals, gid) {
            // Cross-shard commit point: flush the participants, then
            // one global commit record. Failure converges to the
            // rollback path below — and to abort-at-recovery, since no
            // global record was made durable.
            let fp: Vec<usize> = parts.iter().map(|(s, _)| *s).collect();
            if let Err(e) = w.commit_global(g, &fp) {
                failure = Some(e);
            }
        }
    }
    match failure {
        None => {
            #[cfg(feature = "durability")]
            let trace = assemble_txn_trace(shard_traces, parts.len(), gid);
            #[cfg(not(feature = "durability"))]
            let trace = assemble_txn_trace(shard_traces, parts.len(), None);
            (Ok(combined), trace)
        }
        Some(e) => {
            // Undo every shard that already committed, newest first. A
            // restore is a pointer swap of `Arc`-backed catalogs: it fires
            // no failpoints and cannot fail, so a fault mid-protocol
            // always converges to the pre-transaction state.
            for (shard, backup, prior_report) in committed.into_iter().rev() {
                let mut db = cells[shard].lock().unwrap_or_else(|e| e.into_inner());
                db.catalog = backup;
                db.last_report = prior_report;
            }
            (Err(e), None)
        }
    }
}

/// Assemble a committed transaction's span from its per-shard transaction
/// traces (empty when tracing is off). The shape contract
/// ([`SchedOutcome::traces`]): a single-shard transaction's span is the
/// shard's own `transaction` trace — structurally identical to the
/// unsharded trace, with the shard id as a non-structural note — and a
/// cross-shard transaction gets a structural `cross-shard commit` root
/// with one `shard N` child per participant (ascending shard order, which
/// routing fixes deterministically) plus a `wal global-commit` child when
/// a global commit record was logged (`wal_global` carries its gid; the
/// gid value itself is admission-timing-dependent, so it rides as a
/// note).
fn assemble_txn_trace(
    mut shard_traces: Vec<(usize, TraceNode)>,
    n_parts: usize,
    wal_global: Option<u64>,
) -> Option<TraceNode> {
    if shard_traces.is_empty() {
        return None;
    }
    if n_parts == 1 {
        let (s, mut t) = shard_traces.pop()?;
        t.push_note(format!("shard {s}"));
        return Some(t);
    }
    let mut root = TraceNode::new("cross-shard commit").with_field("shards", n_parts);
    for (s, t) in shard_traces {
        let mut sn = TraceNode::new(format!("shard {s}"));
        sn.push_child(t);
        root.push_child(sn);
    }
    if let Some(gid) = wal_global {
        let mut w = TraceNode::new("wal global-commit").with_field("participants", n_parts);
        w.push_note(format!("gid {gid}"));
        root.push_child(w);
    }
    Some(root)
}

//! # spacetime-ivm
//!
//! The runtime: actually *doing* the incremental maintenance the optimizer
//! planned, against real storage, with measured page I/Os that are
//! directly comparable to the optimizer's estimates.
//!
//! * [`qexec`] — runtime evaluation of the queries posed during delta
//!   propagation, picking the same plans the cost model priced (lookups on
//!   materialized nodes, pushed-down evaluation elsewhere).
//! * [`engine`] — [`engine::IvmEngine`]: materializes a chosen view set,
//!   and propagates base-table deltas along the cheapest update tracks,
//!   maintaining every materialized view and reporting per-bucket I/O.
//! * [`constraints`] — SQL-92 assertions as views required to be empty
//!   (§1, §6): incremental checking and violation reporting.
//! * [`database`] — [`database::Database`]: the user-facing session tying
//!   everything together (DDL, DML with automatic view maintenance, SQL
//!   front end, workload declaration, view-selection strategies).
//! * [`pipeline`] — the parallel propagation pipeline: a persistent
//!   worker pool, the [`pipeline::ExecutionMode`] knob, and the
//!   per-transaction cross-engine shared-delta cache. Parallelism is
//!   wall-clock only: reports, deltas, and view contents stay
//!   bit-identical to sequential execution.
//! * [`shard`] — sharded serving: [`shard::ShardedDatabase`] partitions a
//!   database into N shard domains by declared shard keys, each shard a
//!   full database with its own engines and per-shard materializations.
//! * [`sched`] — the footprint-based transaction scheduler
//!   ([`sched::TxnScheduler`]): disjoint-footprint transactions run
//!   concurrently, conflicting and cross-shard ones serialize through a
//!   cross-shard all-or-nothing commit protocol; serial replay in
//!   admission order is bit-identical.
//! * `durability` (feature `durability`) — per-shard write-ahead
//!   logging, checkpoints, and crash recovery proven bit-identical
//!   (DESIGN.md §17). Off by default; the default build does not link
//!   the wal crate.
//! * [`trace`] — propagation-trace recording: the opt-in, always-compiled
//!   `EXPLAIN ANALYZE` plane ([`Database::set_tracing`] /
//!   [`Database::last_trace`]), structurally deterministic across
//!   execution modes.
//! * [`verify`] — the recompute-from-scratch oracle used by tests and
//!   examples to prove maintenance correct.

pub mod constraints;
pub mod database;
#[cfg(feature = "durability")]
pub mod durability;
pub mod engine;
pub mod pipeline;
pub mod qexec;
pub mod sched;
pub mod shard;
pub mod trace;
pub mod verify;

pub use constraints::{Assertion, Violation};
pub use database::{Database, PhaseTotals, ViewSelection};
#[cfg(feature = "durability")]
pub use durability::{
    DurabilityOptions, DurableDatabase, DurableSharded, RecoveryStats, ShardWals,
};
pub use engine::{IvmEngine, PropagationMode, UpdateReport};
pub use pipeline::{ExecutionMode, PipelinePool, SharedDeltaCache};
pub use sched::{SchedOutcome, SchedStats, Txn, TxnScheduler};
pub use shard::ShardedDatabase;
pub use trace::TraceNode;
pub use verify::verify_all_views;

/// Errors surfaced by the runtime: storage/algebra errors plus SQL ones.
#[derive(Debug)]
pub enum IvmError {
    /// Storage/algebra/semantic failure.
    Storage(spacetime_storage::StorageError),
    /// SQL front-end failure.
    Sql(spacetime_sql::SqlError),
    /// An integrity constraint would be violated.
    AssertionViolated {
        /// The assertion's name.
        name: String,
        /// Sample violating tuples (rendered).
        sample: Vec<String>,
    },
    /// A pipeline task panicked. The panic was contained: the worker pool
    /// survives, detached tables were salvaged from the pre-commit
    /// snapshot, and the catalog is bit-identical to its pre-transaction
    /// state — the transaction simply never happened.
    TaskPanicked {
        /// The panic payload, rendered (when it was a string).
        message: String,
    },
    /// A post-failure integrity check found damage (a missing/detached
    /// table or an assertion view diverging from recomputation).
    Integrity(String),
    /// An internal invariant did not hold (a bug, not a user error).
    Internal(String),
    /// Unsupported operation.
    Unsupported(String),
}

impl std::fmt::Display for IvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IvmError::Storage(e) => write!(f, "{e}"),
            IvmError::Sql(e) => write!(f, "{e}"),
            IvmError::AssertionViolated { name, sample } => {
                write!(f, "assertion `{name}` violated")?;
                if !sample.is_empty() {
                    write!(f, " (e.g. {})", sample.join(", "))?;
                }
                Ok(())
            }
            IvmError::TaskPanicked { message } => {
                write!(f, "pipeline task panicked: {message}")
            }
            IvmError::Integrity(msg) => write!(f, "integrity check failed: {msg}"),
            IvmError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            IvmError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for IvmError {}

impl From<spacetime_storage::StorageError> for IvmError {
    fn from(e: spacetime_storage::StorageError) -> Self {
        IvmError::Storage(e)
    }
}

impl From<spacetime_sql::SqlError> for IvmError {
    fn from(e: spacetime_sql::SqlError) -> Self {
        IvmError::Sql(e)
    }
}

/// Result alias.
pub type IvmResult<T> = Result<T, IvmError>;

//! The user-facing database session.
//!
//! [`Database`] ties everything together: a storage catalog, a SQL front
//! end, a declared workload of transaction types, a view-selection
//! strategy, and one [`IvmEngine`] per materialized view or assertion.
//! DML statements are converted to deltas, planned against every dependent
//! engine, gated on assertions (a violating transaction is rejected
//! *before* anything is applied — SQL-92 semantics), and committed with
//! full I/O accounting.

use std::collections::BTreeMap;
use std::sync::Arc;

use spacetime_algebra::{eval_uncharged, ExprNode, ExprTree, ScalarExpr};
use spacetime_cost::{PageIoCostModel, TransactionType};
use spacetime_delta::Delta;
use spacetime_memo::{explore, Memo};
use spacetime_optimizer::heuristics::rule_of_thumb_optimize;
use spacetime_optimizer::{greedy_add, optimal_view_set, shielding_optimize, EvalConfig, ViewSet};
use spacetime_obs::{self as obs, names as metric, MetricsSnapshot, TraceNode};
use spacetime_sql::{lower::lower_literal_row, lower_select, parse_statements, Statement};
use spacetime_storage::{Bag, Catalog, Column, IoMeter, Schema, Table, Tuple, Value};

use crate::constraints::{Assertion, Violation};
use crate::engine::{IvmEngine, PlanOptions, PlannedUpdate, PropagationMode, UpdateReport};
use crate::pipeline::{ExecutionMode, PipelinePool, SharedDeltaCache};
use crate::{IvmError, IvmResult};

/// How auxiliary views are chosen when a view/assertion is created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViewSelection {
    /// Materialize only the view itself.
    RootOnly,
    /// Algorithm OptimalViewSet (Figure 4) — exhaustive.
    #[default]
    Exhaustive,
    /// Exhaustive with the Shielding-Principle decomposition (§4).
    Shielding,
    /// Greedy hill-climbing (§5, approximate costing).
    Greedy,
    /// The §5 rule-of-thumb marking.
    RuleOfThumb,
}

/// Outcome of one executed statement.
#[derive(Debug)]
pub enum SqlOutcome {
    /// DDL completed.
    Created(String),
    /// Rows from a `SELECT`.
    Rows(Bag),
    /// DML completed; how many tuples were touched, with the maintenance
    /// report.
    Updated {
        /// Touched base tuples.
        count: u64,
        /// Combined maintenance I/O across engines.
        report: UpdateReport,
    },
}

/// A database session.
///
/// `Clone` is cheap: the catalog's tables and the engines sit behind
/// `Arc`s, so a clone shares all storage copy-on-write. The fault harness
/// relies on this to stamp out fresh databases from a prebuilt template.
#[derive(Clone)]
pub struct Database {
    /// Storage: base tables and materialized views.
    pub catalog: Catalog,
    engines: Vec<Arc<IvmEngine>>,
    assertions: Vec<Assertion>,
    workload: Vec<TransactionType>,
    selection: ViewSelection,
    mode: PropagationMode,
    exec: ExecutionMode,
    pool: Option<Arc<PipelinePool>>,
    tracing: bool,
    last_trace: Option<TraceNode>,
    /// Accumulated maintenance reports (for benchmarking).
    pub last_report: Option<UpdateReport>,
    /// Transaction-scoped undo journal for the sequential in-place commit
    /// path. Held on the session so its buffers are pooled across
    /// transactions (reset, never freed).
    undo: spacetime_delta::UndoLog,
    /// Accumulate per-phase wall clock across updates (see
    /// [`Database::set_phase_stats`]).
    collect_phases: bool,
    phase_totals: PhaseTotals,
}

/// Cumulative wall-clock attribution of [`Database::apply_delta`] across
/// its three phases, summed over every update since phase collection was
/// (re)enabled. Phase timing is an observation only — it never changes
/// deltas, reports, or view contents.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Phase 1: delta propagation along the update tracks (planning).
    pub plan_ns: u64,
    /// Assertion gate: integrity checks against pre-update state.
    pub gate_ns: u64,
    /// Phase 2: applying the planned deltas (commit).
    pub commit_ns: u64,
    /// Updates the totals cover.
    pub updates: u64,
}

impl PhaseTotals {
    /// Total attributed nanoseconds across all three phases.
    pub fn sum_ns(&self) -> u64 {
        self.plan_ns + self.gate_ns + self.commit_ns
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database with the default (exhaustive) view selection.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            engines: Vec::new(),
            assertions: Vec::new(),
            workload: Vec::new(),
            selection: ViewSelection::default(),
            mode: PropagationMode::default(),
            exec: ExecutionMode::default(),
            pool: None,
            tracing: false,
            last_trace: None,
            last_report: None,
            undo: spacetime_delta::UndoLog::new(),
            collect_phases: false,
            phase_totals: PhaseTotals::default(),
        }
    }

    /// Turn per-phase wall-clock accumulation on or off (resetting the
    /// totals either way). While on, every successful
    /// [`Database::apply_delta`] adds its plan/gate/commit durations to
    /// the totals returned by [`Database::phase_totals`] — a few clock
    /// reads per update, independent of tracing.
    pub fn set_phase_stats(&mut self, on: bool) {
        self.collect_phases = on;
        self.phase_totals = PhaseTotals::default();
    }

    /// The accumulated phase attribution (zeros unless
    /// [`Database::set_phase_stats`] is on).
    pub fn phase_totals(&self) -> PhaseTotals {
        self.phase_totals
    }

    /// Turn propagation tracing on or off. While on, every
    /// [`Database::apply_delta`] / [`Database::apply_transaction`] records
    /// an `EXPLAIN ANALYZE`-style span tree, retrievable with
    /// [`Database::last_trace`]. Tracing does extra bookkeeping (probes and
    /// clock reads) but never changes deltas, reports, or view contents,
    /// and the recorded *structure* is identical across execution modes —
    /// only wall-clock durations and cache notes differ.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.last_trace = None;
        }
    }

    /// Whether propagation tracing is on.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// The trace recorded by the most recent successful
    /// [`Database::apply_delta`] / [`Database::apply_transaction`], if
    /// tracing is on. Render it with [`TraceNode::render_text`] (the
    /// `EXPLAIN ANALYZE` tree) or [`TraceNode::render_json`].
    pub fn last_trace(&self) -> Option<&TraceNode> {
        self.last_trace.as_ref()
    }

    /// Take ownership of the most recent trace, leaving none behind. The
    /// serving layer uses this to move per-shard transaction traces into
    /// assembled cross-shard spans without cloning.
    pub fn take_trace(&mut self) -> Option<TraceNode> {
        self.last_trace.take()
    }

    /// A snapshot of the process-wide metrics registry: pool, cache,
    /// track, and latency series accumulated across every database in the
    /// process. Empty (all maps empty) in default builds — metrics only
    /// record when the `metrics` cargo feature is enabled
    /// ([`spacetime_obs::compiled`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        obs::snapshot()
    }

    /// Set the view-selection strategy for subsequently created views.
    pub fn set_view_selection(&mut self, s: ViewSelection) {
        self.selection = s;
    }

    /// Set the propagation data plane for every engine, existing and
    /// future. Both modes produce identical deltas and charge identical
    /// I/O; [`PropagationMode::PerKey`] is the benchmark baseline.
    pub fn set_propagation_mode(&mut self, mode: PropagationMode) {
        self.mode = mode;
        for e in &mut self.engines {
            Arc::make_mut(e).set_propagation_mode(mode);
        }
    }

    /// Set how transactions execute: [`ExecutionMode::Sequential`] (the
    /// default) or [`ExecutionMode::Parallel`] (the pipeline — identical
    /// deltas, reports, and view contents, less wall clock).
    pub fn set_execution_mode(&mut self, exec: ExecutionMode) {
        self.exec = exec;
    }

    /// The active execution mode, as declared.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.exec
    }

    /// The active propagation mode (checkpoints persist it).
    pub fn propagation_mode(&self) -> PropagationMode {
        self.mode
    }

    /// Recovery hook: register an engine rebuilt from a checkpoint (its
    /// tables are already restored and bound via `rebuild_pinned`).
    #[cfg(feature = "durability")]
    pub(crate) fn install_engine(&mut self, engine: IvmEngine) {
        self.engines.push(Arc::new(engine));
    }

    /// Recovery hook: re-register a checkpointed assertion without
    /// re-running its creation path (its backing view already exists).
    #[cfg(feature = "durability")]
    pub(crate) fn install_assertion(&mut self, assertion: Assertion) {
        self.assertions.push(assertion);
    }

    /// The execution mode transactions actually run under. On a 1-CPU
    /// host, a declared [`ExecutionMode::Parallel`] with no explicit
    /// override (no session pool from [`Database::set_pipeline_pool`], no
    /// `RAYON_NUM_THREADS`) auto-degrades to the inline width-1 sequential
    /// fast path: the pool cannot win wall clock without a second core, it
    /// only adds dispatch overhead, and both modes are proven
    /// bit-identical. An explicit override is honored verbatim — pinned
    /// determinism tests and scaling sweeps measure exactly the width they
    /// asked for.
    pub fn effective_execution_mode(&self) -> ExecutionMode {
        match self.exec {
            ExecutionMode::Parallel
                if self.pool.is_none()
                    && crate::pipeline::env_width_override().is_none()
                    && crate::pipeline::host_cpus() == 1 =>
            {
                ExecutionMode::Sequential
            }
            e => e,
        }
    }

    /// The worker width transactions effectively run at: 1 under
    /// (effective) sequential execution, else the pool's thread count.
    pub fn effective_width(&self) -> usize {
        match self.effective_execution_mode() {
            ExecutionMode::Sequential => 1,
            ExecutionMode::Parallel => self.pool().threads(),
        }
    }

    /// Use a specific worker pool (e.g. a pinned-width pool for scaling
    /// measurements) instead of the process-wide default.
    pub fn set_pipeline_pool(&mut self, pool: Arc<PipelinePool>) {
        self.pool = Some(pool);
    }

    fn pool(&self) -> Arc<PipelinePool> {
        self.pool.clone().unwrap_or_else(PipelinePool::global)
    }

    /// Declare the workload (transaction types with weights) the optimizer
    /// should plan for. Without a declaration, a unit modification per
    /// base relation with equal weights is assumed.
    pub fn declare_workload(&mut self, txns: Vec<TransactionType>) {
        self.workload = txns;
    }

    /// The engines (for inspection/benchmarks). Shared handles: the
    /// parallel pipeline clones them into worker tasks.
    pub fn engines(&self) -> &[Arc<IvmEngine>] {
        &self.engines
    }

    /// Execute one or more `;`-separated SQL statements, returning the
    /// last statement's outcome.
    pub fn execute_sql(&mut self, sql: &str) -> IvmResult<SqlOutcome> {
        let stmts = parse_statements(sql)?;
        if stmts.is_empty() {
            return Err(IvmError::Unsupported("empty statement".into()));
        }
        let mut last = None;
        for stmt in stmts {
            last = Some(self.execute(stmt)?);
        }
        Ok(last.expect("nonempty checked"))
    }

    fn execute(&mut self, stmt: Statement) -> IvmResult<SqlOutcome> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| Column::new(&name, &c.name, c.dtype))
                        .collect(),
                );
                self.catalog.create_table(&name, schema)?;
                let keys: Vec<&str> = columns
                    .iter()
                    .filter(|c| c.primary_key)
                    .map(|c| c.name.as_str())
                    .collect();
                if !keys.is_empty() {
                    self.catalog.declare_key(&name, &keys)?;
                }
                Ok(SqlOutcome::Created(name))
            }
            Statement::CreateIndex { table, columns } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.catalog.create_index(&table, &cols)?;
                Ok(SqlOutcome::Created(table))
            }
            Statement::CreateView {
                name,
                columns,
                select,
                ..
            } => {
                let mut tree = lower_select(&select, &self.catalog)?;
                if let Some(cols) = columns {
                    tree = rename_outputs(tree, &cols)?;
                }
                self.create_materialized_view(&name, tree)?;
                Ok(SqlOutcome::Created(name))
            }
            Statement::CreateAssertion { name, select } => {
                let tree = lower_select(&select, &self.catalog)?;
                self.create_assertion(&name, tree)?;
                Ok(SqlOutcome::Created(name))
            }
            Statement::Insert { table, rows } => {
                let mut delta = Delta::new();
                for row in &rows {
                    let values = lower_literal_row(row)?;
                    delta.inserts.insert(Tuple::new(values), 1);
                }
                let count = delta.size();
                let report = self.apply_delta(&table, delta)?;
                Ok(SqlOutcome::Updated { count, report })
            }
            Statement::Delete { table, predicate } => {
                let rows = self.matching_rows(&table, predicate.as_ref())?;
                let mut delta = Delta::new();
                for (t, c) in rows.iter() {
                    delta.deletes.insert(t.clone(), c);
                }
                let count = delta.size();
                let report = self.apply_delta(&table, delta)?;
                Ok(SqlOutcome::Updated { count, report })
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let schema = self.catalog.table(&table)?.schema().clone();
                let assignments: Vec<(usize, ScalarExpr)> = sets
                    .iter()
                    .map(|(col, e)| {
                        let pos = schema.resolve(None, col)?;
                        let lowered = spacetime_sql::lower::lower_scalar(e, &schema)
                            .map_err(IvmError::Sql)?;
                        Ok::<_, IvmError>((pos, lowered))
                    })
                    .collect::<IvmResult<_>>()?;
                let rows = self.matching_rows(&table, predicate.as_ref())?;
                let mut delta = Delta::new();
                for (t, c) in rows.iter() {
                    let mut new_vals: Vec<Value> = t.values().to_vec();
                    for (pos, e) in &assignments {
                        new_vals[*pos] = e.eval(t)?;
                    }
                    delta.push_modify(t.clone(), Tuple::new(new_vals), c);
                }
                let count = delta.size();
                let report = self.apply_delta(&table, delta)?;
                Ok(SqlOutcome::Updated { count, report })
            }
            Statement::Select(select) => {
                let tree = lower_select(&select, &self.catalog)?;
                Ok(SqlOutcome::Rows(eval_uncharged(&tree, &self.catalog)?))
            }
        }
    }

    fn matching_rows(
        &self,
        table: &str,
        predicate: Option<&spacetime_sql::Expr>,
    ) -> IvmResult<Bag> {
        let t = self.catalog.table(table)?;
        let data = t.relation.data();
        match predicate {
            None => Ok(data.clone()),
            Some(p) => {
                let pred = spacetime_sql::lower::lower_scalar(p, t.schema())?;
                let mut out = Bag::new();
                for (tup, c) in data.iter() {
                    if pred.eval_predicate(tup)? {
                        out.insert(tup.clone(), c);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Programmatic view creation: build the DAG, run the configured
    /// view-selection strategy against the declared workload, materialize,
    /// and register the engine. Returns the chosen additional view count.
    pub fn create_materialized_view(
        &mut self,
        name: &str,
        tree: ExprTree,
    ) -> IvmResult<&IvmEngine> {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &self.catalog)?;
        let root = memo.find(root);

        let txns = if self.workload.is_empty() {
            default_workload(&memo, root)
        } else {
            self.workload.clone()
        };
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let view_set: ViewSet = match self.selection {
            ViewSelection::RootOnly => [root].into_iter().collect(),
            ViewSelection::Exhaustive => {
                optimal_view_set(&memo, &self.catalog, &model, root, &txns, &config)
                    .best
                    .view_set
            }
            ViewSelection::Shielding => {
                shielding_optimize(&memo, &self.catalog, &model, root, &txns, &config)
                    .best
                    .view_set
            }
            ViewSelection::Greedy => {
                greedy_add(&memo, &self.catalog, &model, root, &txns, &config)
                    .best
                    .view_set
            }
            ViewSelection::RuleOfThumb => {
                rule_of_thumb_optimize(&memo, &self.catalog, &model, root, &tree, &txns, &config)
                    .best
                    .view_set
            }
        };
        let mut engine = IvmEngine::build(name, memo, root, view_set, &mut self.catalog)?;
        engine.creation = vec![(name.to_string(), tree)];
        engine.set_propagation_mode(self.mode);
        self.engines.push(Arc::new(engine));
        Ok(self.engines.last().expect("just pushed"))
    }

    /// Create several views over **one shared DAG** (§6: "the expression
    /// DAG … may therefore have multiple roots, and every view that must
    /// be materialized will be marked"). The optimizer chooses auxiliary
    /// views once for the whole group, so a subexpression shared by
    /// several views is materialized and maintained once. Additional
    /// views per set are capped at 3 to keep the multi-rooted exhaustive
    /// search tractable.
    pub fn create_view_group(&mut self, views: Vec<(String, ExprTree)>) -> IvmResult<&IvmEngine> {
        if views.is_empty() {
            return Err(IvmError::Unsupported("empty view group".into()));
        }
        let mut memo = Memo::new();
        let mut named_roots = Vec::with_capacity(views.len());
        for (name, tree) in &views {
            let g = memo.insert_tree(tree);
            named_roots.push((name.clone(), g));
        }
        memo.set_root(named_roots[0].1);
        explore(&mut memo, &self.catalog)?;
        let roots: Vec<spacetime_memo::GroupId> =
            named_roots.iter().map(|&(_, g)| memo.find(g)).collect();
        let named_roots: Vec<(String, spacetime_memo::GroupId)> = named_roots
            .into_iter()
            .map(|(n, g)| (n, memo.find(g)))
            .collect();

        let txns = if self.workload.is_empty() {
            let mut tables = Vec::new();
            for &r in &roots {
                for t in crate::engine::leaf_tables(&memo, r) {
                    if !tables.contains(&t) {
                        tables.push(t);
                    }
                }
            }
            tables
                .into_iter()
                .map(|t| TransactionType::modify(format!(">{t}"), t, 1.0))
                .collect()
        } else {
            self.workload.clone()
        };
        let model = PageIoCostModel::default();
        let config = EvalConfig::default();
        let outcome = spacetime_optimizer::optimal_view_set_multi(
            &memo,
            &self.catalog,
            &model,
            &roots,
            &txns,
            &config,
            Some(3),
        );
        let mut engine = IvmEngine::build_with_roots(
            named_roots,
            memo,
            outcome.best.view_set,
            &mut self.catalog,
        )?;
        engine.creation = views;
        engine.set_propagation_mode(self.mode);
        self.engines.push(Arc::new(engine));
        Ok(self.engines.last().expect("just pushed"))
    }

    /// Create an assertion: a maintained view that must stay empty. Fails
    /// immediately if the current data already violates it.
    pub fn create_assertion(&mut self, name: &str, tree: ExprTree) -> IvmResult<()> {
        let view_name = format!("__assert_{name}");
        self.create_materialized_view(&view_name, tree)?;
        let assertion = Assertion {
            name: name.to_string(),
            view: view_name,
        };
        if let Some(v) = assertion.check(&self.catalog)? {
            return Err(violation_error(v));
        }
        self.assertions.push(assertion);
        Ok(())
    }

    /// The declared assertions.
    pub fn assertions(&self) -> &[Assertion] {
        &self.assertions
    }

    /// Apply a delta to a base table, incrementally maintaining every
    /// dependent view and checking assertions *before* committing
    /// anything. Returns the combined maintenance report.
    pub fn apply_delta(&mut self, table: &str, delta: Delta) -> IvmResult<UpdateReport> {
        if self.tracing {
            // A failed or empty update leaves no trace behind; the prior
            // trace never masquerades as this update's.
            self.last_trace = None;
        }
        if delta.is_empty() {
            return Ok(UpdateReport::default());
        }
        obs::counter_add(metric::UPDATES_APPLIED, 1);
        let update_watch = obs::stopwatch();
        let timed = self.tracing || self.collect_phases;
        let t_plan = timed.then(std::time::Instant::now);
        let exec = self.effective_execution_mode();
        // Phase 1: plan against pre-update state.
        let mut planned = match exec {
            ExecutionMode::Sequential => {
                let opts = PlanOptions {
                    trace: self.tracing,
                    ..PlanOptions::default()
                };
                let mut planned = Vec::with_capacity(self.engines.len());
                for e in &self.engines {
                    planned.push(e.plan_update_with(&self.catalog, table, &delta, &opts)?);
                }
                planned
            }
            ExecutionMode::Parallel => self.plan_parallel(table, &delta)?,
        };
        let plan_dur = t_plan.map(|t| t.elapsed());
        let t_gate = timed.then(std::time::Instant::now);
        // Assertion gate (always against pre-update state, whichever mode
        // planned — a violating transaction is rejected before any write).
        for a in &self.assertions {
            if let Some((engine, plan)) = self
                .engines
                .iter()
                .zip(&planned)
                .find(|(e, _)| e.name == a.view)
            {
                if let Some(v) = a.check_planned(&self.catalog, engine, plan)? {
                    return Err(violation_error(v));
                }
            }
        }
        // Phase 2: commit everywhere. Both paths are all-or-nothing, by
        // different mechanisms (DESIGN.md §12, §15): the sequential path
        // applies writes in place on the live catalog with an inverse-op
        // undo journal (zero shard copies in the steady state — the
        // dirty-shard fast path), and the parallel path stages writes in
        // copy-on-write `Arc<Table>` copies published by a single
        // `restore_tables` swap. Either way ANY failure (storage error,
        // injected fault, contained panic) leaves the catalog
        // bit-identical to its pre-transaction state. Reports merge each
        // engine's planning report with its apply report in engine order
        // (deterministic regardless of which threads did the work).
        let gate_dur = t_gate.map(|t| t.elapsed());
        let commit_watch = obs::stopwatch();
        let t_commit = timed.then(std::time::Instant::now);
        let mut combined = UpdateReport::default();
        match exec {
            ExecutionMode::Sequential => {
                self.commit_sequential(table, &delta, &planned, &mut combined)?
            }
            // All Parallel-mode commits route through the pool — even a
            // single committing engine at width 1 — so an injected panic
            // in commit code is always contained by the pool's
            // catch_unwind rather than unwinding the caller.
            ExecutionMode::Parallel => {
                let pool = self.pool();
                self.commit_parallel(&pool, table, &delta, &planned, &mut combined)?
            }
        }
        commit_watch.observe(metric::COMMIT_LATENCY_NS);
        update_watch.observe(metric::UPDATE_LATENCY_NS);
        let commit_dur = t_commit.map(|t| t.elapsed());
        if self.collect_phases {
            self.phase_totals.plan_ns += plan_dur.map_or(0, |d| d.as_nanos() as u64);
            self.phase_totals.gate_ns += gate_dur.map_or(0, |d| d.as_nanos() as u64);
            self.phase_totals.commit_ns += commit_dur.map_or(0, |d| d.as_nanos() as u64);
            self.phase_totals.updates += 1;
        }
        if self.tracing {
            self.last_trace = Some(self.update_trace(
                table,
                &delta,
                &mut planned,
                plan_dur,
                gate_dur,
                commit_dur,
            ));
        }
        // Workload-drift accounting (ROADMAP item 4's input signal): the
        // per-table transaction mix and each view's maintenance-cost EWMA.
        // `compiled()` is const, so the whole block folds away by default.
        if obs::compiled() {
            obs::drift::note_txn(table);
            for (e, plan) in self.engines.iter().zip(planned.iter()) {
                obs::drift::note_view_cost(&e.name, plan.report.total() as f64);
            }
        }
        self.last_report = Some(combined.clone());
        Ok(combined)
    }

    /// Assemble the per-update trace tree from the engines' propagation
    /// traces plus a deterministic commit section derived from `planned`
    /// (never from which threads did the committing). Called only when
    /// tracing is on, after a successful commit.
    fn update_trace(
        &self,
        table: &str,
        delta: &Delta,
        planned: &mut [PlannedUpdate],
        plan_dur: Option<std::time::Duration>,
        gate_dur: Option<std::time::Duration>,
        commit_dur: Option<std::time::Duration>,
    ) -> TraceNode {
        let mut root =
            TraceNode::new(format!("update {table}")).with_field("rows", delta.size());
        // Execution mode and phase timings are observations about *how* the
        // update ran, not *what* it computed — non-structural by contract.
        root.push_note(format!("exec={:?}", self.exec));
        if let (Some(p), Some(g), Some(c)) = (plan_dur, gate_dur, commit_dur) {
            root.push_note(format!(
                "phases plan={}ns gate={}ns commit={}ns",
                p.as_nanos(),
                g.as_nanos(),
                c.as_nanos()
            ));
            root.set_wall(p + g + c);
        }
        for plan in planned.iter_mut() {
            if let Some(t) = plan.trace.take() {
                root.push_child(t);
            }
        }
        let mut commit = TraceNode::new("commit");
        if let Some(c) = commit_dur {
            commit.set_wall(c);
        }
        for (e, plan) in self.engines.iter().zip(planned.iter()) {
            for (g, d) in &plan.view_deltas {
                let name = e
                    .materialized
                    .get(g)
                    .map(String::as_str)
                    .unwrap_or("<unmaterialized>");
                let kind = if e.roots.contains(g) { "view" } else { "aux" };
                commit.push_child(
                    TraceNode::new(format!("apply {name}"))
                        .with_field("kind", kind)
                        .with_field("rows", d.size()),
                );
            }
        }
        commit.push_child(
            TraceNode::new(format!("apply {table}"))
                .with_field("kind", "base")
                .with_field("rows", delta.size()),
        );
        root.push_child(commit);
        root
    }

    /// Sequential journaled commit — the dirty-shard fast path. View
    /// deltas and the base delta are applied *in place* on the live
    /// catalog, recording an inverse operation in the session's
    /// [`spacetime_delta::UndoLog`] for each landed write. In the steady
    /// state the cataloged `Arc<Table>`s are unshared, so `Arc::make_mut`
    /// is free and only the storage shards a transaction actually
    /// disturbs are touched — where the staged path deep-copied every
    /// shard of every touched table and then discarded the originals.
    ///
    /// All-or-nothing is preserved by the journal instead of by staging:
    /// on any failure — a storage error, an injected fault (including the
    /// `storage::restore_table` commit gate, fired once per journaled
    /// table for parity with the staged swap), or a panic unwinding apply
    /// code — the journal replays in reverse with an uncharged meter,
    /// leaving the catalog bit-identical to its pre-transaction state
    /// before the error propagates (or the panic resumes).
    fn commit_sequential(
        &mut self,
        table: &str,
        delta: &Delta,
        planned: &[PlannedUpdate],
        combined: &mut UpdateReport,
    ) -> IvmResult<()> {
        use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
        self.undo.reset();
        let engines = &self.engines;
        let catalog = &mut self.catalog;
        let undo = &mut self.undo;
        let outcome = catch_unwind(AssertUnwindSafe(
            || -> IvmResult<(UpdateReport, IoMeter)> {
                let mut rep = UpdateReport::default();
                for (e, plan) in engines.iter().zip(planned) {
                    rep.merge(&plan.report);
                    let r = e.commit_in_place(catalog, plan, undo)?;
                    rep.merge(&r);
                }
                let mut base_io = IoMeter::new();
                let rel = &mut catalog.table_mut(table)?.relation;
                spacetime_delta::apply_to_relation_undo(delta, rel, &mut base_io, undo)?;
                // The commit gate: same failpoint, fired the same number
                // of times, as the staged path's batch swap.
                for _ in 0..undo.table_count() {
                    spacetime_storage::fault::fire("storage::restore_table")?;
                }
                Ok((rep, base_io))
            },
        ));
        match outcome {
            Ok(Ok((rep, base_io))) => {
                combined.merge(&rep);
                combined.base_io = base_io;
                let mut dirty = 0u64;
                for name in undo.tables() {
                    let rel = &mut catalog.table_mut(name)?.relation;
                    dirty += u64::from(rel.dirty_shards());
                    rel.clear_dirty();
                }
                obs::counter_add(metric::COMMIT_DIRTY_SHARDS, dirty);
                undo.reset();
                Ok(())
            }
            Ok(Err(e)) => {
                undo.rollback(catalog)
                    .expect("undo replay of landed ops cannot fail");
                Err(e)
            }
            Err(panic) => {
                undo.rollback(catalog)
                    .expect("undo replay of landed ops cannot fail");
                resume_unwind(panic)
            }
        }
    }

    /// Plan every engine concurrently against an immutable catalog
    /// snapshot. Dependent engines run on the pool (with level-parallel
    /// tracks and a per-transaction shared-delta cache); independent
    /// engines plan inline, since their plans are trivially empty.
    fn plan_parallel(&self, table: &str, delta: &Delta) -> IvmResult<Vec<PlannedUpdate>> {
        let pool = self.pool();
        let level_parallel = pool.threads() > 1;
        let trace = self.tracing;
        let shared = Arc::new(SharedDeltaCache::new());
        let snap = Arc::new(self.catalog.snapshot());
        let delta = Arc::new(delta.clone());
        let mut slots: Vec<Option<PlannedUpdate>> = (0..self.engines.len()).map(|_| None).collect();
        type PlanTask = Box<dyn FnOnce() -> (usize, IvmResult<PlannedUpdate>) + Send>;
        let mut tasks: Vec<PlanTask> = Vec::new();
        for (i, e) in self.engines.iter().enumerate() {
            if e.depends_on(table) {
                let e = Arc::clone(e);
                let snap = Arc::clone(&snap);
                let delta = Arc::clone(&delta);
                let shared = Arc::clone(&shared);
                let table = table.to_string();
                tasks.push(Box::new(move || {
                    let opts = PlanOptions {
                        level_parallel,
                        shared: Some(&shared),
                        trace,
                    };
                    (i, e.plan_update_with(&snap, &table, &delta, &opts))
                }));
            } else {
                slots[i] = Some(e.plan_update(&self.catalog, table, &delta)?);
            }
        }
        // Results arrive in task order = engine order among dependents, so
        // on failure the first (lowest-index) engine's error surfaces,
        // matching the sequential path. Planning never writes, so a failed
        // (or panicked) plan needs no rollback — the catalog was never
        // touched.
        for outcome in pool.run_outcomes(tasks)? {
            let (i, r) = outcome.map_err(|message| IvmError::TaskPanicked { message })?;
            slots[i] = Some(r?);
        }
        slots
            .into_iter()
            .map(|s| s.ok_or_else(|| IvmError::Internal("an engine was never planned".into())))
            .collect()
    }

    /// Commit every engine's planned deltas concurrently. Each committing
    /// engine's materialized tables are detached from the catalog
    /// ([`Catalog::take_table`] — the sets are disjoint, every engine owns
    /// its own view/auxiliary tables) and applied on the pool through
    /// copy-on-write staging ([`IvmEngine::commit_detached`] mutates
    /// `Arc::make_mut` copies, never the detached originals).
    ///
    /// All-or-nothing: the pre-commit `Arc`s of every detached table are
    /// kept in `originals`, so whatever goes wrong — a commit error, an
    /// injected fault, a *panicking* task (contained by the pool; its
    /// staged tables die with it, the originals don't) — the originals are
    /// re-attached and the catalog is bit-identical to its pre-transaction
    /// state. Only when every task succeeded and the base delta staged
    /// cleanly does a single `restore_tables` swap publish the new state.
    fn commit_parallel(
        &mut self,
        pool: &PipelinePool,
        table: &str,
        delta: &Delta,
        planned: &[PlannedUpdate],
        combined: &mut UpdateReport,
    ) -> IvmResult<()> {
        type CommitOut = (usize, BTreeMap<String, Arc<Table>>, IvmResult<UpdateReport>);
        type CommitTask = Box<dyn FnOnce() -> CommitOut + Send>;
        let mut originals: BTreeMap<String, Arc<Table>> = BTreeMap::new();
        let mut tasks: Vec<CommitTask> = Vec::new();
        for (i, (e, plan)) in self.engines.iter().zip(planned).enumerate() {
            if plan.view_deltas.is_empty() {
                continue;
            }
            let mut tables: BTreeMap<String, Arc<Table>> = BTreeMap::new();
            for (g, _) in &plan.view_deltas {
                let name = e.materialized.get(g).ok_or_else(|| {
                    IvmError::Internal(format!(
                        "plan references group N{} which `{}` never materialized",
                        g.0, e.name
                    ))
                });
                let name = match name {
                    Ok(n) => n,
                    Err(err) => {
                        for (n, t) in originals {
                            self.catalog.restore_table(n, t);
                        }
                        return Err(err);
                    }
                };
                if !tables.contains_key(name) {
                    match self.catalog.take_table(name) {
                        Ok(t) => {
                            originals.insert(name.clone(), Arc::clone(&t));
                            tables.insert(name.clone(), t);
                        }
                        Err(err) => {
                            // Put everything detached so far back before
                            // failing (reattachment cannot fail).
                            for (n, t) in originals {
                                self.catalog.restore_table(n, t);
                            }
                            return Err(err.into());
                        }
                    }
                }
            }
            let e = Arc::clone(e);
            let plan = plan.clone();
            tasks.push(Box::new(move || {
                let mut tables = tables;
                let r = e.commit_detached(&mut tables, &plan);
                (i, tables, r)
            }));
        }
        // Outcomes arrive in task order = engine order, so the first
        // failure surfaced is the lowest-index engine's, matching
        // sequential execution. A panicked task's staged tables are gone,
        // but `originals` still holds every pre-commit Arc.
        let outcomes = match pool.run_outcomes(tasks) {
            Ok(o) => o,
            Err(err) => {
                for (n, t) in originals {
                    self.catalog.restore_table(n, t);
                }
                return Err(err);
            }
        };
        let mut commit_reports: BTreeMap<usize, UpdateReport> = BTreeMap::new();
        let mut mutated: BTreeMap<String, Arc<Table>> = BTreeMap::new();
        let mut first_err: Option<IvmError> = None;
        for outcome in outcomes {
            match outcome {
                Ok((i, tables, Ok(rep))) => {
                    commit_reports.insert(i, rep);
                    mutated.extend(tables);
                }
                Ok((_, _, Err(e))) => {
                    first_err.get_or_insert(e);
                }
                Err(message) => {
                    first_err.get_or_insert(IvmError::TaskPanicked { message });
                }
            }
        }
        // Stage the base delta too (only once every engine committed), so
        // the base relation joins the same atomic swap.
        let base_io = if first_err.is_none() {
            match stage_base_delta(&self.catalog, &mut mutated, table, delta) {
                Ok(io) => Some(io),
                Err(e) => {
                    first_err = Some(e);
                    None
                }
            }
        } else {
            None
        };
        if let Some(e) = first_err {
            // Roll back: re-attach every pre-commit original; staged
            // mutations are discarded wholesale.
            for (n, t) in originals {
                self.catalog.restore_table(n, t);
            }
            return Err(e);
        }
        // The commit point: publish every staged table in one swap. On an
        // injected failure here, fall back to the originals — the swap
        // fires all failpoints before touching the map, so it is still
        // all-or-nothing.
        if let Err(e) = self.catalog.restore_tables(mutated) {
            for (n, t) in originals {
                self.catalog.restore_table(n, t);
            }
            return Err(e.into());
        }
        for (i, plan) in planned.iter().enumerate() {
            combined.merge(&plan.report);
            if let Some(r) = commit_reports.get(&i) {
                combined.merge(r);
            }
        }
        if let Some(io) = base_io {
            combined.base_io = io;
        }
        Ok(())
    }

    /// Apply a multi-relation transaction (the §3.2 transaction types may
    /// update several relations): each relation's delta is propagated
    /// sequentially, with immediate-mode assertion checking per step
    /// (SQL-92's default). Returns the summed maintenance report.
    ///
    /// All-or-nothing: if update *k* fails — including an assertion
    /// Violation detected only once updates `1..k` are in place — the
    /// whole transaction rolls back and the catalog is bit-identical to
    /// its pre-transaction state. The rollback is a snapshot restore
    /// (`Arc`-backed catalog clone, no data copy), so it cannot itself
    /// fail.
    pub fn apply_transaction(&mut self, updates: Vec<(String, Delta)>) -> IvmResult<UpdateReport> {
        let backup = self.catalog.clone();
        let prior_report = self.last_report.clone();
        let prior_trace = self.last_trace.take();
        let mut txn_trace = self
            .tracing
            .then(|| TraceNode::new("transaction").with_field("updates", updates.len()));
        let t0 = self.tracing.then(std::time::Instant::now);
        let mut combined = UpdateReport::default();
        for (table, delta) in updates {
            match self.apply_delta(&table, delta) {
                Ok(r) => {
                    combined.merge(&r);
                    // Collect the per-update trace into the transaction
                    // node (empty deltas record nothing — structurally the
                    // same in every mode).
                    if let Some(txn) = txn_trace.as_mut() {
                        if let Some(t) = self.last_trace.take() {
                            txn.push_child(t);
                        }
                    }
                }
                Err(e) => {
                    self.catalog = backup;
                    self.last_report = prior_report;
                    self.last_trace = prior_trace;
                    return Err(e);
                }
            }
        }
        self.last_report = Some(combined.clone());
        if let Some(mut txn) = txn_trace {
            if let Some(t0) = t0 {
                txn.set_wall(t0.elapsed());
            }
            self.last_trace = Some(txn);
        }
        Ok(combined)
    }

    /// Check every assertion against current state.
    pub fn check_assertions(&self) -> IvmResult<Vec<Violation>> {
        let mut out = Vec::new();
        for a in &self.assertions {
            if let Some(v) = a.check(&self.catalog)? {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Post-failure damage audit. Verifies structural invariants the
    /// commit protocol promises to preserve no matter how a transaction
    /// died:
    ///
    /// 1. every engine's materialized tables (root views and auxiliaries)
    ///    are attached to the catalog — nothing was left detached by a
    ///    panicked parallel commit;
    /// 2. every assertion's backing view matches recomputation from the
    ///    base relations (an assertion view that drifted would silently
    ///    stop enforcing its constraint).
    ///
    /// Cheap relative to [`verify_all_views`] (which recomputes *every*
    /// engine): only assertion-backing engines are recomputed here.
    pub fn integrity_check(&self) -> IvmResult<()> {
        let r = self.integrity_check_inner();
        if let Err(e) = &r {
            // Structural damage is exactly what the flight recorder
            // exists for: record the finding and dump the recent-event
            // ring so the post-mortem has the lead-up.
            obs::flight::record("integrity_failure", || e.to_string());
            obs::flight::dump_to_stderr("integrity-check failure");
        }
        r
    }

    fn integrity_check_inner(&self) -> IvmResult<()> {
        for e in &self.engines {
            for table in e.materialized_tables() {
                if !self.catalog.contains(table) {
                    return Err(IvmError::Integrity(format!(
                        "materialized table `{table}` of view `{}` is detached from the catalog",
                        e.name
                    )));
                }
            }
        }
        for a in &self.assertions {
            let Some(engine) = self.engines.iter().find(|e| e.name == a.view) else {
                return Err(IvmError::Integrity(format!(
                    "assertion `{}` has no backing engine `{}`",
                    a.name, a.view
                )));
            };
            let mismatches = crate::verify::verify_engine(engine, &self.catalog)?;
            if let Some(m) = mismatches.first() {
                return Err(IvmError::Integrity(format!(
                    "assertion `{}` view `{}` diverged from recomputation: {}",
                    a.name, m.table, m.detail
                )));
            }
        }
        Ok(())
    }
}

/// Stage the base delta into a copy-on-write copy of the base table,
/// inserting it into `staged` for the caller's atomic swap. The catalog is
/// read, never written.
fn stage_base_delta(
    catalog: &Catalog,
    staged: &mut BTreeMap<String, Arc<Table>>,
    table: &str,
    delta: &Delta,
) -> IvmResult<IoMeter> {
    let mut base_io = IoMeter::new();
    let entry = match staged.entry(table.to_string()) {
        std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::btree_map::Entry::Vacant(e) => e.insert(catalog.table_arc(table)?),
    };
    let rel = &mut Arc::make_mut(entry).relation;
    spacetime_delta::apply_to_relation(delta, rel, &mut base_io)?;
    Ok(base_io)
}

fn violation_error(v: Violation) -> IvmError {
    IvmError::AssertionViolated {
        name: v.assertion,
        sample: v.witnesses,
    }
}

/// Rename a tree's outputs (CREATE VIEW column list) via a projection.
fn rename_outputs(tree: ExprTree, names: &[String]) -> IvmResult<ExprTree> {
    if names.len() != tree.schema.arity() {
        return Err(IvmError::Unsupported(format!(
            "view column list has {} names but the query produces {} columns",
            names.len(),
            tree.schema.arity()
        )));
    }
    let exprs: Vec<(ScalarExpr, String)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (ScalarExpr::col(i), n.clone()))
        .collect();
    // An identity projection (same names) would be elided by the memo's
    // project-identity rule anyway; building it is still correct.
    Ok(ExprNode::project(tree, exprs)?)
}

/// Default workload: one unit modification per base relation, equal
/// weights (§3.2's model with no further information).
fn default_workload(memo: &Memo, root: spacetime_memo::GroupId) -> Vec<TransactionType> {
    crate::engine::leaf_tables(memo, root)
        .into_iter()
        .map(|t| TransactionType::modify(format!(">{t}"), t, 1.0))
        .collect()
}

//! The recompute-from-scratch oracle.
//!
//! Incremental maintenance is only trustworthy against a ground truth:
//! [`verify_all_views`] recomputes every materialized node of every engine
//! from the base relations and compares bags. Tests and examples call it
//! after update sequences; an empty mismatch list proves the engine's
//! deltas were exact.

use spacetime_algebra::eval_uncharged;
use spacetime_storage::Catalog;

use crate::database::Database;
use crate::engine::IvmEngine;
use crate::IvmResult;

/// One detected divergence.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The materialized table that diverged.
    pub table: String,
    /// Human-readable summary of the difference.
    pub detail: String,
}

/// Verify one engine's materializations against recomputation.
pub fn verify_engine(engine: &IvmEngine, catalog: &Catalog) -> IvmResult<Vec<Mismatch>> {
    let mut out = Vec::new();
    for (&g, table) in &engine.materialized {
        let tree = engine.memo.extract_one(g);
        let expected = eval_uncharged(&tree, catalog)?;
        let actual = catalog.table(table)?.relation.data();
        if &expected != actual {
            let missing = expected.monus(actual);
            let extra = actual.monus(&expected);
            out.push(Mismatch {
                table: table.clone(),
                detail: format!(
                    "{} missing, {} extra (missing sample: {:?}, extra sample: {:?})",
                    missing.len(),
                    extra.len(),
                    missing.sorted().into_iter().take(2).collect::<Vec<_>>(),
                    extra.sorted().into_iter().take(2).collect::<Vec<_>>(),
                ),
            });
        }
    }
    Ok(out)
}

/// Verify every engine of a database. Returns all mismatches (empty =
/// everything consistent).
pub fn verify_all_views(db: &Database) -> IvmResult<Vec<Mismatch>> {
    let mut out = Vec::new();
    for e in db.engines() {
        out.extend(verify_engine(e, &db.catalog)?);
    }
    Ok(out)
}

//! All-or-nothing multi-relation transactions.
//!
//! `apply_transaction` checks assertions in immediate mode (per update,
//! SQL-92's default), so a violation can surface at update *k* with
//! updates `1..k` already committed. The transaction contract is still
//! atomic: the earlier updates must be undone and the catalog must be
//! bit-identical to its pre-transaction state.

use std::sync::Arc;

use spacetime_delta::Delta;
use spacetime_ivm::{
    verify_all_views, Database, ExecutionMode, IvmError, PipelinePool,
};
use spacetime_storage::{tuple, Bag, IoMeter};

/// A small paper-shaped database: 5 departments x 3 employees, budget 600,
/// salary 100 each, with the paper's DeptConstraint assertion and one
/// extra view so several engines depend on the updated relations.
fn small_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .unwrap();
    let mut io = IoMeter::new();
    for d in 0..5 {
        let dname = format!("dept{d}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple![dname.clone(), format!("mgr{d}"), 600_i64], 1, &mut io)
            .unwrap();
        for e in 0..3 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(tuple![format!("emp{d}_{e}"), dname.clone(), 100_i64], 1, &mut io)
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();
    db.execute_sql(
        "CREATE MATERIALIZED VIEW DeptProfile AS \
         SELECT DName, COUNT(*) AS Heads, MAX(Salary) AS TopSal \
         FROM Emp GROUP BY DName",
    )
    .unwrap();
    db.execute_sql(
        "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
            SELECT Dept.DName FROM Emp, Dept \
            WHERE Dept.DName = Emp.DName \
            GROUP BY Dept.DName, Budget \
            HAVING SUM(Salary) > Budget))",
    )
    .unwrap();
    db
}

/// Every table's contents, for bit-identity comparison.
fn contents(db: &Database) -> Vec<(String, Bag)> {
    db.catalog
        .iter()
        .map(|(n, t)| (n.to_string(), t.relation.data().clone()))
        .collect()
}

/// The transaction under test: a harmless budget cut on dept0, then a
/// salary raise that pushes dept1 over its budget. Only the *second*
/// update violates DeptConstraint; the first commits before the violation
/// is detected and must be rolled back with it.
fn violating_txn() -> Vec<(String, Delta)> {
    vec![
        (
            "Dept".to_string(),
            Delta::modify(
                tuple!["dept0", "mgr0", 600],
                tuple!["dept0", "mgr0", 550],
                1,
            ),
        ),
        (
            "Emp".to_string(),
            Delta::modify(
                tuple!["emp1_0", "dept1", 100],
                tuple!["emp1_0", "dept1", 9_999],
                1,
            ),
        ),
    ]
}

fn assert_txn_atomicity(mut db: Database) {
    let before = contents(&db);
    let err = db.apply_transaction(violating_txn()).unwrap_err();
    assert!(
        matches!(&err, IvmError::AssertionViolated { name, .. } if name == "DeptConstraint"),
        "{err}"
    );
    // The whole transaction never happened: the first (non-violating)
    // update was undone along with the rejected one.
    assert_eq!(contents(&db), before, "catalog changed by a failed txn");
    assert!(verify_all_views(&db).unwrap().is_empty());
    assert!(db.check_assertions().unwrap().is_empty());
    db.integrity_check().unwrap();
    // The same transaction minus the violation goes through afterwards.
    let mut ok_txn = violating_txn();
    ok_txn[1].1 = Delta::modify(
        tuple!["emp1_0", "dept1", 100],
        tuple!["emp1_0", "dept1", 120],
        1,
    );
    db.apply_transaction(ok_txn).unwrap();
    assert!(db
        .catalog
        .table("Dept")
        .unwrap()
        .relation
        .data()
        .contains(&tuple!["dept0", "mgr0", 550]));
    assert!(verify_all_views(&db).unwrap().is_empty());
}

#[test]
fn mid_transaction_violation_rolls_back_earlier_updates() {
    assert_txn_atomicity(small_db());
}

#[test]
fn mid_transaction_violation_rolls_back_under_parallel_execution() {
    for threads in [1, 2, 4] {
        let mut db = small_db();
        db.set_execution_mode(ExecutionMode::Parallel);
        db.set_pipeline_pool(Arc::new(PipelinePool::new(threads)));
        assert_txn_atomicity(db);
    }
}

#[test]
fn single_delta_violation_leaves_catalog_untouched() {
    // The pre-existing gate (reject before any write) still holds for a
    // one-update transaction through the staged-commit path.
    let mut db = small_db();
    let before = contents(&db);
    let err = db
        .apply_delta(
            "Emp",
            Delta::modify(
                tuple!["emp2_1", "dept2", 100],
                tuple!["emp2_1", "dept2", 9_999],
                1,
            ),
        )
        .unwrap_err();
    assert!(matches!(err, IvmError::AssertionViolated { .. }), "{err}");
    assert_eq!(contents(&db), before);
    db.integrity_check().unwrap();
}

//! The propagation-trace plane: opt-in, zero behavior change, and
//! structurally deterministic across execution modes.

use std::sync::Arc;

use spacetime_delta::Delta;
use spacetime_ivm::{verify_all_views, Database, ExecutionMode, PipelinePool};
use spacetime_storage::{tuple, Bag, IoMeter};

/// The paper's Emp/Dept schema with an aggregate view and an assertion, so
/// an update exercises multi-engine propagation plus the assertion gate.
fn small_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .unwrap();
    let mut io = IoMeter::new();
    for d in 0..4 {
        let dname = format!("dept{d}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple![dname.clone(), format!("mgr{d}"), 900_i64], 1, &mut io)
            .unwrap();
        for e in 0..3 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(
                    tuple![format!("emp{d}_{e}"), dname.clone(), 100_i64],
                    1,
                    &mut io,
                )
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();
    db.execute_sql(
        "CREATE MATERIALIZED VIEW DeptSal AS \
         SELECT DName, SUM(Salary) AS Total FROM Emp GROUP BY DName",
    )
    .unwrap();
    db.execute_sql(
        "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
            SELECT Dept.DName FROM Emp, Dept \
            WHERE Dept.DName = Emp.DName \
            GROUP BY Dept.DName, Budget \
            HAVING SUM(Salary) > Budget))",
    )
    .unwrap();
    db
}

fn raise() -> Delta {
    Delta::modify(
        tuple!["emp1_0", "dept1", 100_i64],
        tuple!["emp1_0", "dept1", 150_i64],
        1,
    )
}

fn contents(db: &Database) -> Vec<(String, Bag)> {
    db.catalog
        .iter()
        .map(|(n, t)| (n.to_string(), t.relation.data().clone()))
        .collect()
}

#[test]
fn tracing_off_records_nothing() {
    let mut db = small_db();
    db.apply_delta("Emp", raise()).unwrap();
    assert!(db.last_trace().is_none());
}

#[test]
fn trace_shape_covers_propagation_and_commit() {
    let mut db = small_db();
    db.set_tracing(true);
    assert!(db.tracing());
    db.apply_delta("Emp", raise()).unwrap();
    let trace = db.last_trace().expect("tracing on records a trace");
    assert_eq!(trace.label, "update Emp");
    assert_eq!(trace.field("rows"), Some("1"));
    // One propagate child per dependent engine (view + assertion), plus
    // the commit section.
    let propagates: Vec<_> = trace
        .children
        .iter()
        .filter(|c| c.label.starts_with("propagate "))
        .collect();
    assert_eq!(propagates.len(), 2, "view and assertion engines both traced");
    for p in &propagates {
        assert_eq!(p.field("table"), Some("Emp"));
        assert!(p.field("track").is_some(), "track field present");
        // Every propagate subtree starts from a leaf scan level.
        assert!(p.children.iter().any(|l| l.label.starts_with("level ")));
    }
    let commit = trace
        .children
        .iter()
        .find(|c| c.label == "commit")
        .expect("commit section present");
    // The base table and the root view are both applied.
    assert!(commit.children.iter().any(|c| c.label == "apply Emp"));
    assert!(commit.children.iter().any(|c| c.label == "apply DeptSal"));
    let text = trace.render_text();
    assert!(text.contains("update Emp"), "text render roots the tree");
    assert!(text.contains("commit"), "text render shows commit");
    let json = trace.render_json();
    assert!(json.contains("\"label\": \"update Emp\""));
}

#[test]
fn empty_delta_clears_the_last_trace() {
    let mut db = small_db();
    db.set_tracing(true);
    db.apply_delta("Emp", raise()).unwrap();
    assert!(db.last_trace().is_some());
    db.apply_delta("Emp", Delta::new()).unwrap();
    assert!(db.last_trace().is_none(), "empty update leaves no trace");
}

#[test]
fn tracing_does_not_change_reports_or_contents() {
    let mut plain = small_db();
    let mut traced = small_db();
    traced.set_tracing(true);
    let r0 = plain.apply_delta("Emp", raise()).unwrap();
    let r1 = traced.apply_delta("Emp", raise()).unwrap();
    assert_eq!(r0, r1, "tracing must not perturb the report");
    assert_eq!(contents(&plain), contents(&traced));
    assert!(verify_all_views(&traced).unwrap().is_empty());
}

#[test]
fn trace_structure_is_mode_independent() {
    for width in [1, 2, 4] {
        let mut seq = small_db();
        seq.set_tracing(true);
        let mut par = small_db();
        par.set_tracing(true);
        par.set_execution_mode(ExecutionMode::Parallel);
        par.set_pipeline_pool(Arc::new(PipelinePool::new(width)));
        seq.apply_delta("Emp", raise()).unwrap();
        par.apply_delta("Emp", raise()).unwrap();
        let t_seq = seq.last_trace().unwrap();
        let t_par = par.last_trace().unwrap();
        assert!(
            t_seq.structural_eq(t_par),
            "width {width}: structures differ:\n--- sequential\n{}\n--- parallel\n{}",
            t_seq.structure_json(),
            t_par.structure_json()
        );
    }
}

#[test]
fn transaction_trace_wraps_per_update_traces() {
    let mut db = small_db();
    db.set_tracing(true);
    let txn = vec![
        ("Emp".to_string(), raise()),
        ("Emp".to_string(), Delta::new()), // empty: traced as nothing
        (
            "Dept".to_string(),
            Delta::modify(
                tuple!["dept2", "mgr2", 900_i64],
                tuple!["dept2", "mgr2", 800_i64],
                1,
            ),
        ),
    ];
    db.apply_transaction(txn).unwrap();
    let trace = db.last_trace().expect("transaction trace recorded");
    assert_eq!(trace.label, "transaction");
    assert_eq!(trace.field("updates"), Some("3"));
    let labels: Vec<&str> = trace.children.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(labels, ["update Emp", "update Dept"]);
}

#[test]
fn failed_transaction_restores_the_prior_trace() {
    let mut db = small_db();
    db.set_tracing(true);
    db.apply_delta("Emp", raise()).unwrap();
    let before = db.last_trace().unwrap().structure_json();
    // Blow the dept0 budget: assertion rejects, transaction rolls back.
    let bad = vec![(
        "Emp".to_string(),
        Delta::modify(
            tuple!["emp0_0", "dept0", 100_i64],
            tuple!["emp0_0", "dept0", 100_000_i64],
            1,
        ),
    )];
    assert!(db.apply_transaction(bad).is_err());
    let after = db.last_trace().expect("prior trace restored");
    assert_eq!(before, after.structure_json());
}

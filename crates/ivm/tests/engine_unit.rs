//! Focused tests of the runtime internals: the query executor's access
//! paths, engine planning/commit phases, and report accounting.

use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ScalarExpr};
use spacetime_cost::{CostCtx, PageIoCostModel};
use spacetime_delta::Delta;
use spacetime_ivm::engine::IvmEngine;
use spacetime_ivm::qexec::QueryExec;
use spacetime_ivm::UpdateReport;
use spacetime_memo::{explore, Memo};
use spacetime_optimizer::ViewSet;
use spacetime_storage::{tuple, Catalog, DataType, IoMeter, Schema, Value};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        "Emp",
        Schema::of_table(
            "Emp",
            &[
                ("EName", DataType::Str),
                ("DName", DataType::Str),
                ("Salary", DataType::Int),
            ],
        ),
    )
    .unwrap();
    cat.declare_key("Emp", &["EName"]).unwrap();
    cat.create_index("Emp", &["DName"]).unwrap();
    cat.create_table(
        "Dept",
        Schema::of_table(
            "Dept",
            &[("DName", DataType::Str), ("Budget", DataType::Int)],
        ),
    )
    .unwrap();
    cat.declare_key("Dept", &["DName"]).unwrap();
    let mut io = IoMeter::new();
    for (e, d, s) in [
        ("a", "x", 10),
        ("b", "x", 20),
        ("c", "y", 30),
        ("d", "y", 40),
        ("e", "z", 50),
    ] {
        cat.table_mut("Emp")
            .unwrap()
            .relation
            .insert(tuple![e, d, s], 1, &mut io)
            .unwrap();
    }
    for (d, b) in [("x", 100), ("y", 25), ("z", 60)] {
        cat.table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple![d, b], 1, &mut io)
            .unwrap();
    }
    cat.table_mut("Emp").unwrap().analyze();
    cat.table_mut("Dept").unwrap().analyze();
    cat
}

fn sum_view(cat: &Catalog) -> (Memo, spacetime_memo::GroupId) {
    let emp = ExprNode::scan(cat, "Emp").unwrap();
    let dept = ExprNode::scan(cat, "Dept").unwrap();
    let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
    let agg = ExprNode::aggregate(
        join,
        vec![3, 4],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "S")],
    )
    .unwrap();
    let sel = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
    )
    .unwrap();
    let mut memo = Memo::new();
    let root = memo.insert_tree(&sel);
    memo.set_root(root);
    explore(&mut memo, cat).unwrap();
    let root = memo.find(root);
    (memo, root)
}

#[test]
fn qexec_leaf_lookup_uses_index() {
    let cat = catalog();
    let (memo, _root) = sum_view(&cat);
    let emp_group = memo
        .groups()
        .find(|&g| {
            memo.group_ops(g).iter().any(|&o| {
                matches!(&memo.op(o).op, spacetime_algebra::OpKind::Scan { table } if table == "Emp")
            })
        })
        .unwrap();
    let mats = Default::default();
    let exec = QueryExec::new(&memo, &cat, &mats);
    let model = PageIoCostModel::default();
    let mut ctx = CostCtx::new(&memo, &cat, &model);
    let mut io = IoMeter::new();
    let hits = exec
        .query(emp_group, &[1], &[Value::str("y")], &mut ctx, &mut io)
        .unwrap();
    assert_eq!(hits.len(), 2);
    assert_eq!(io.total(), 3, "index probe + 2 tuples");
}

#[test]
fn qexec_pushes_binding_through_aggregate() {
    let cat = catalog();
    let (memo, root) = sum_view(&cat);
    // The select's child group (aggregate output), bound on DName.
    let n2 = {
        let op = memo.group_ops(root)[0];
        memo.op_children(op)[0]
    };
    let mats = Default::default();
    let exec = QueryExec::new(&memo, &cat, &mats);
    let model = PageIoCostModel::default();
    let mut ctx = CostCtx::new(&memo, &cat, &model);
    let mut io = IoMeter::new();
    let rows = exec
        .query(n2, &[0], &[Value::str("y")], &mut ctx, &mut io)
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows.contains(&tuple!["y", 25, 70]));
    // Pushed to indexes: 3 (Emp y-group) + 2 (Dept key) page I/Os.
    assert_eq!(io.total(), 5, "{io}");
}

#[test]
fn qexec_full_eval_matches_executor() {
    let cat = catalog();
    let (memo, root) = sum_view(&cat);
    let mats = Default::default();
    let exec = QueryExec::new(&memo, &cat, &mats);
    let model = PageIoCostModel::default();
    let mut ctx = CostCtx::new(&memo, &cat, &model);
    let mut io = IoMeter::new();
    let got = exec.full_eval(root, &mut ctx, &mut io).unwrap();
    let reference = spacetime_algebra::eval_uncharged(&memo.extract_one(root), &cat).unwrap();
    assert_eq!(got, reference);
    // y: 70 > 25 — the only over-budget department.
    assert_eq!(got.len(), 1);
}

#[test]
fn engine_plan_then_commit_phases() {
    let mut cat = catalog();
    let (memo, root) = sum_view(&cat);
    let set: ViewSet = [root].into_iter().collect();
    let engine = IvmEngine::build("V", memo, root, set, &mut cat).unwrap();
    assert!(engine.depends_on("Emp"));
    assert!(engine.depends_on("Dept"));
    assert!(!engine.depends_on("Nope"));

    // Plan: nothing applied yet.
    let delta = Delta::modify(tuple!["e", "z", 50], tuple!["e", "z", 70], 1);
    let planned = engine.plan_update(&cat, "Emp", &delta).unwrap();
    assert!(
        cat.table("V").unwrap().relation.len() == 1,
        "not yet applied"
    );
    // z: 70 > 60 now → one insert at the root.
    let root_delta = planned.root_delta(engine.root).unwrap();
    assert_eq!(root_delta.inserts.len(), 1);

    // Commit applies it.
    engine.commit_update(&mut cat, &planned).unwrap();
    assert_eq!(cat.table("V").unwrap().relation.len(), 2);
}

#[test]
fn unrelated_table_update_is_free() {
    let mut cat = catalog();
    cat.create_table("Other", Schema::of_table("Other", &[("x", DataType::Int)]))
        .unwrap();
    let (memo, root) = sum_view(&cat);
    let set: ViewSet = [root].into_iter().collect();
    let engine = IvmEngine::build("V", memo, root, set, &mut cat).unwrap();
    let planned = engine
        .plan_update(&cat, "Other", &Delta::insert(tuple![1], 1))
        .unwrap();
    assert!(planned.view_deltas.is_empty());
    assert_eq!(planned.report.query_io.total(), 0);
}

#[test]
fn update_report_accounting() {
    let mut a = UpdateReport::default();
    a.query_io.index_probe();
    a.query_io.read_tuples(1);
    a.aux_io.read_tuples(2);
    a.root_io.write_tuples(3);
    a.base_io.write_tuples(4);
    assert_eq!(a.paper_cost(), 4, "queries + aux only");
    assert_eq!(a.total(), 11);
    let mut b = UpdateReport::default();
    b.merge(&a);
    b.merge(&a);
    assert_eq!(b.paper_cost(), 8);
    assert_eq!(b.total(), 22);
}

/// Regression: `commit_update` must return *only* apply-phase I/O. The old
/// behavior (returning a clone of the planning report with apply buckets
/// added) double-counted `query_io` whenever a caller merged planning and
/// commit reports.
#[test]
fn commit_report_contains_only_apply_io() {
    let mut cat = catalog();
    let (memo, root) = sum_view(&cat);
    let set: ViewSet = [root].into_iter().collect();
    let engine = IvmEngine::build("V", memo, root, set, &mut cat).unwrap();
    let delta = Delta::modify(tuple!["e", "z", 50], tuple!["e", "z", 70], 1);
    let planned = engine.plan_update(&cat, "Emp", &delta).unwrap();
    assert!(planned.report.query_io.total() > 0, "planning poses queries");
    assert!(planned.report.queries_posed > 0);
    let commit = engine.commit_update(&mut cat, &planned).unwrap();
    assert_eq!(commit.query_io.total(), 0, "planning I/O re-counted");
    assert_eq!(commit.queries_posed, 0);
    assert!(commit.root_io.total() > 0, "root view write is apply I/O");

    // apply_update = planning report + commit report, each page once.
    let mut cat2 = catalog();
    let (memo2, root2) = sum_view(&cat2);
    let set2: ViewSet = [root2].into_iter().collect();
    let engine2 = IvmEngine::build("V", memo2, root2, set2, &mut cat2).unwrap();
    let full = engine2.apply_update(&mut cat2, "Emp", &delta).unwrap();
    let mut expect = planned.report.clone();
    expect.merge(&commit);
    assert_eq!(full, expect);
}

/// `commit_detached` (the parallel commit path, applying to tables removed
/// from the catalog) must leave the same contents and charge the same I/O
/// as the in-place `commit_update`.
#[test]
fn detached_commit_equals_in_place_commit() {
    let build = || {
        let mut cat = catalog();
        let (memo, root) = sum_view(&cat);
        let set: ViewSet = [root].into_iter().collect();
        let engine = IvmEngine::build("V", memo, root, set, &mut cat).unwrap();
        (cat, engine)
    };
    let delta = Delta::modify(tuple!["e", "z", 50], tuple!["e", "z", 70], 1);

    let (mut cat_a, engine_a) = build();
    let planned = engine_a.plan_update(&cat_a, "Emp", &delta).unwrap();
    let r_in_place = engine_a.commit_update(&mut cat_a, &planned).unwrap();

    let (mut cat_b, engine_b) = build();
    let mut tables = std::collections::BTreeMap::new();
    tables.insert("V".to_string(), cat_b.take_table("V").unwrap());
    let r_detached = engine_b.commit_detached(&mut tables, &planned).unwrap();
    for (name, t) in tables {
        cat_b.restore_table(name, t);
    }
    assert_eq!(r_in_place, r_detached);
    assert_eq!(
        cat_a.table("V").unwrap().relation.data(),
        cat_b.table("V").unwrap().relation.data()
    );
}

/// The level-parallel planner and the shared-delta cache are wall-clock
/// knobs only: same deltas, same report (posed-query count included).
#[test]
fn level_parallel_plan_is_bit_identical() {
    use spacetime_ivm::engine::PlanOptions;
    use spacetime_ivm::SharedDeltaCache;
    let mut cat = catalog();
    let (memo, root) = sum_view(&cat);
    let set: ViewSet = [root].into_iter().collect();
    let engine = IvmEngine::build("V", memo, root, set, &mut cat).unwrap();
    let delta = Delta::modify(tuple!["e", "z", 50], tuple!["e", "z", 70], 1);
    let baseline = engine.plan_update(&cat, "Emp", &delta).unwrap();
    let shared = SharedDeltaCache::new();
    let opts = PlanOptions {
        level_parallel: true,
        shared: Some(&shared),
        ..PlanOptions::default()
    };
    let piped = engine.plan_update_with(&cat, "Emp", &delta, &opts).unwrap();
    assert_eq!(baseline.report, piped.report);
    assert_eq!(baseline.view_deltas, piped.view_deltas);
}

#[test]
fn engine_rejects_unknown_table_under_view() {
    let mut cat = catalog();
    let (memo, root) = sum_view(&cat);
    let set: ViewSet = [root].into_iter().collect();
    let engine = IvmEngine::build("V", memo, root, set, &mut cat).unwrap();
    // An inconsistent delta (modifying an absent tuple) must surface as an
    // error during planning (the propagation rules detect it).
    let bad = Delta::modify(tuple!["ghost", "x", 1], tuple!["ghost", "x", 2], 1);
    // Planning may succeed at nodes that never read the tuple, but the
    // subsequent commit of a root modify referencing absent rows fails;
    // either phase erroring is acceptable — the end state must not be
    // silently wrong.
    let result = engine
        .plan_update(&cat, "Emp", &bad)
        .and_then(|p| engine.commit_update(&mut cat, &p));
    assert!(result.is_err());
}

//! §6 end-to-end: several views sharing one DAG, one auxiliary-view
//! choice, and one maintenance pass per update.

use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ScalarExpr};
use spacetime_cost::TransactionType;
use spacetime_ivm::{verify_all_views, Database};
use spacetime_storage::{tuple, IoMeter};

fn base_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .unwrap();
    let mut io = IoMeter::new();
    for d in 0..100 {
        let dname = format!("dept{d:03}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(tuple![dname.clone(), format!("m{d}"), 2000_i64], 1, &mut io)
            .unwrap();
        for e in 0..10 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(
                    tuple![format!("e{d:03}_{e}"), dname.clone(), 100_i64],
                    1,
                    &mut io,
                )
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    db
}

/// ProblemDept and a salary report share the SumOfSals subexpression:
/// grouped creation materializes ONE auxiliary for both.
#[test]
fn view_group_shares_one_auxiliary() {
    let mut db = base_db();
    // View 1: ProblemDept.
    let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
    let dept = ExprNode::scan(&db.catalog, "Dept").unwrap();
    let join = ExprNode::join_on(emp.clone(), dept, &[("Emp.DName", "Dept.DName")]).unwrap();
    let agg = ExprNode::aggregate(
        join,
        vec![3, 5],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let problem_dept = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
    )
    .unwrap();
    // View 2: departments with a positive salary total (trivially all of
    // them — the point is the shared SumOfSals shape).
    let agg2 = ExprNode::aggregate(
        emp,
        vec![1],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let payroll = ExprNode::select(
        agg2,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(0)),
    )
    .unwrap();

    db.create_view_group(vec![
        ("ProblemDept".to_string(), problem_dept),
        ("Payroll".to_string(), payroll),
    ])
    .unwrap();

    // One engine, two roots, and at most one auxiliary beyond them.
    assert_eq!(db.engines().len(), 1);
    let engine = &db.engines()[0];
    assert_eq!(engine.roots.len(), 2);
    let aux: Vec<&String> = engine
        .materialized
        .iter()
        .filter(|(g, _)| !engine.roots.contains(g))
        .map(|(_, t)| t)
        .collect();
    assert!(
        aux.len() <= 1,
        "shared auxiliary, not one per view: {aux:?}"
    );

    // Both views exist and are correct.
    assert_eq!(db.catalog.table("Payroll").unwrap().relation.len(), 100);
    assert!(db.catalog.table("ProblemDept").unwrap().relation.is_empty());

    // One update maintains both.
    db.execute_sql("UPDATE Emp SET Salary = 5000 WHERE EName = 'e003_0'")
        .unwrap();
    assert_eq!(db.catalog.table("ProblemDept").unwrap().relation.len(), 1);
    assert!(verify_all_views(&db).unwrap().is_empty());

    // And a Dept update (affects only ProblemDept's side of the DAG).
    db.execute_sql("UPDATE Dept SET Budget = 500 WHERE DName = 'dept004'")
        .unwrap();
    assert_eq!(db.catalog.table("ProblemDept").unwrap().relation.len(), 2);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

/// A grouped creation with one view behaves exactly like the singular API.
#[test]
fn singleton_group_equals_single_view() {
    let mut db1 = base_db();
    let mut db2 = base_db();
    let make_tree = |db: &Database| {
        let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
        ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap()
    };
    let t1 = make_tree(&db1);
    let t2 = make_tree(&db2);
    db1.create_materialized_view("V", t1).unwrap();
    db2.create_view_group(vec![("V".to_string(), t2)]).unwrap();
    db1.execute_sql("UPDATE Emp SET Salary = 120 WHERE EName = 'e001_1'")
        .unwrap();
    db2.execute_sql("UPDATE Emp SET Salary = 120 WHERE EName = 'e001_1'")
        .unwrap();
    assert_eq!(
        db1.catalog.table("V").unwrap().relation.data(),
        db2.catalog.table("V").unwrap().relation.data()
    );
    assert!(verify_all_views(&db1).unwrap().is_empty());
    assert!(verify_all_views(&db2).unwrap().is_empty());
}

/// Multi-relation transactions propagate sequentially (§3.2's transaction
/// model): each relation's delta is applied with the intermediate states
/// visible to the next, and every view stays exact throughout.
#[test]
fn multi_relation_transaction() {
    let mut db = base_db();
    let emp = ExprNode::scan(&db.catalog, "Emp").unwrap();
    let dept = ExprNode::scan(&db.catalog, "Dept").unwrap();
    let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
    let agg = ExprNode::aggregate(
        join,
        vec![3, 5],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let view = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
    )
    .unwrap();
    db.create_materialized_view("OverBudget", view).unwrap();

    // One transaction: raise a salary AND cut the same department's
    // budget — only the combination pushes it over.
    let report = db
        .apply_transaction(vec![
            (
                "Emp".to_string(),
                spacetime_delta::Delta::modify(
                    tuple!["e005_0", "dept005", 100],
                    tuple!["e005_0", "dept005", 900],
                    1,
                ),
            ),
            (
                "Dept".to_string(),
                spacetime_delta::Delta::modify(
                    tuple!["dept005", "m5", 2000],
                    tuple!["dept005", "m5", 1700],
                    1,
                ),
            ),
        ])
        .unwrap();
    assert!(report.total() > 0);
    // 900 + 9×100 = 1800 > 1700: over budget after both steps.
    assert_eq!(db.catalog.table("OverBudget").unwrap().relation.len(), 1);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

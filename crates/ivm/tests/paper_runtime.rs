//! End-to-end runtime reproduction of the paper's §3.6 scenario with real
//! data: 1000 departments × 10000 employees, the ProblemDept view, and
//! *measured* page I/Os compared against the paper's analytic numbers.

use spacetime_cost::TransactionType;
use spacetime_ivm::{verify_all_views, Database, ViewSelection};
use spacetime_storage::{tuple, IoMeter};

/// Build the paper's database with data loaded.
fn paper_db(selection: ViewSelection) -> Database {
    let mut db = Database::new();
    db.set_view_selection(selection);
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);
         CREATE INDEX ON Emp (DName);",
    )
    .unwrap();
    // 1000 departments, 10 employees each; budgets high enough that the
    // view is initially empty ("the integrity constraint is rarely
    // violated").
    let mut io = IoMeter::new();
    for d in 0..1000 {
        let dname = format!("dept{d:04}");
        db.catalog
            .table_mut("Dept")
            .unwrap()
            .relation
            .insert(
                tuple![dname.clone(), format!("mgr{d}"), 2_000_i64],
                1,
                &mut io,
            )
            .unwrap();
        for e in 0..10 {
            db.catalog
                .table_mut("Emp")
                .unwrap()
                .relation
                .insert(
                    tuple![format!("emp{d:04}_{e}"), dname.clone(), 100_i64],
                    1,
                    &mut io,
                )
                .unwrap();
        }
    }
    db.catalog.table_mut("Emp").unwrap().analyze();
    db.catalog.table_mut("Dept").unwrap().analyze();
    db.declare_workload(vec![
        TransactionType::modify(">Emp", "Emp", 1.0),
        TransactionType::modify(">Dept", "Dept", 1.0),
    ]);
    db.execute_sql(
        "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
         SELECT Dept.DName FROM Emp, Dept \
         WHERE Dept.DName = Emp.DName \
         GROUP BY Dept.DName, Budget \
         HAVING SUM(Salary) > Budget",
    )
    .unwrap();
    db
}

#[test]
fn optimizer_materializes_sum_of_sals() {
    let db = paper_db(ViewSelection::Exhaustive);
    let engine = &db.engines()[0];
    // The chosen set must include at least one auxiliary view, and one of
    // them must be the SumOfSals shape (1000 rows, one per department).
    assert!(engine.view_set.len() >= 2, "{:?}", engine.view_set);
    let has_sum_of_sals = engine
        .materialized
        .values()
        .any(|t| db.catalog.table(t).map(|t| t.relation.len()) == Ok(1000) && t.contains("aux"));
    assert!(has_sum_of_sals, "{:?}", engine.materialized);
}

#[test]
fn measured_emp_update_costs_match_paper() {
    let mut db = paper_db(ViewSelection::Exhaustive);
    // >Emp: modify one salary (not enough to violate the budget).
    let report = match db
        .execute_sql("UPDATE Emp SET Salary = 130 WHERE EName = 'emp0042_3'")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Updated { count, report } => {
            assert_eq!(count, 1);
            report
        }
        other => panic!("{other:?}"),
    };
    // Paper, strategy (b): 2 page I/Os of queries (Q2Re) + 3 page I/Os
    // maintaining SumOfSals = 5 in total.
    assert_eq!(report.query_io.total(), 2, "{:?}", report.query_io);
    assert_eq!(report.aux_io.total(), 3, "{:?}", report.aux_io);
    assert_eq!(report.paper_cost(), 5);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

#[test]
fn measured_dept_update_costs_match_paper() {
    let mut db = paper_db(ViewSelection::Exhaustive);
    let report = match db
        .execute_sql("UPDATE Dept SET Budget = 2500 WHERE DName = 'dept0007'")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Updated { report, .. } => report,
        other => panic!("{other:?}"),
    };
    // Paper, strategy (b), >Dept: 2 page I/Os (Q2Ld against the
    // materialized SumOfSals), no auxiliary maintenance.
    assert_eq!(report.query_io.total(), 2, "{:?}", report.query_io);
    assert_eq!(report.aux_io.total(), 0);
    assert_eq!(report.paper_cost(), 2);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

#[test]
fn measured_costs_without_auxiliary_views() {
    let mut db = paper_db(ViewSelection::RootOnly);
    // Strategy (a): >Emp costs 13 (Q2Re 2 + Q4e 11), >Dept costs 11 (Q2Ld).
    let r_emp = match db
        .execute_sql("UPDATE Emp SET Salary = 130 WHERE EName = 'emp0042_3'")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Updated { report, .. } => report,
        other => panic!("{other:?}"),
    };
    assert_eq!(r_emp.paper_cost(), 13, "{:?}", r_emp.query_io);
    let r_dept = match db
        .execute_sql("UPDATE Dept SET Budget = 2500 WHERE DName = 'dept0007'")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Updated { report, .. } => report,
        other => panic!("{other:?}"),
    };
    assert_eq!(r_dept.paper_cost(), 11, "{:?}", r_dept.query_io);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

#[test]
fn view_contents_track_updates_through_threshold() {
    let mut db = paper_db(ViewSelection::Exhaustive);
    let root = &db.engines()[0].name.clone();
    assert!(db.catalog.table(root).unwrap().relation.is_empty());
    // Push dept0001 over budget: 10 × 100 = 1000 ≤ 2000, so raise one
    // salary to 1200 → sum 2100 > 2000.
    db.execute_sql("UPDATE Emp SET Salary = 1200 WHERE EName = 'emp0001_0'")
        .unwrap();
    let rows = db.catalog.table(root).unwrap().relation.data().clone();
    assert_eq!(rows.len(), 1);
    assert!(rows.contains(&tuple!["dept0001"]));
    // And back down again.
    db.execute_sql("UPDATE Emp SET Salary = 100 WHERE EName = 'emp0001_0'")
        .unwrap();
    assert!(db.catalog.table(root).unwrap().relation.is_empty());
    assert!(verify_all_views(&db).unwrap().is_empty());
}

/// The paper's §1 motivation: "when a new employee is added to a
/// department that is not in ProblemDept … the sum of the salaries of all
/// the employees in that department needs to be recomputed … this can be
/// expensive!" — unless SumOfSals is materialized, in which case the
/// insert is "adding to … the previous aggregate values".
#[test]
fn measured_insert_costs() {
    // Without SumOfSals: recompute the group (11) + Dept lookup (2) = 13.
    let mut db = paper_db(ViewSelection::RootOnly);
    let r = match db
        .execute_sql("INSERT INTO Emp VALUES ('newbie', 'dept0005', 50)")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Updated { report, .. } => report,
        other => panic!("{other:?}"),
    };
    assert_eq!(r.paper_cost(), 13, "{:?}", r.query_io);
    // With SumOfSals: adjust the group row in place (2 + 3 = 5).
    let mut db = paper_db(ViewSelection::Exhaustive);
    let r = match db
        .execute_sql("INSERT INTO Emp VALUES ('newbie', 'dept0005', 50)")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Updated { report, .. } => report,
        other => panic!("{other:?}"),
    };
    assert_eq!(r.query_io.total(), 2, "{:?}", r.query_io);
    assert_eq!(r.aux_io.total(), 3, "{:?}", r.aux_io);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

#[test]
fn inserts_and_deletes_maintain_views() {
    let mut db = paper_db(ViewSelection::Exhaustive);
    db.execute_sql("INSERT INTO Emp VALUES ('newbie', 'dept0005', 50)")
        .unwrap();
    db.execute_sql("DELETE FROM Emp WHERE EName = 'emp0005_9'")
        .unwrap();
    // Department transfer (group-key change).
    db.execute_sql("UPDATE Emp SET DName = 'dept0006' WHERE EName = 'emp0005_8'")
        .unwrap();
    assert!(verify_all_views(&db).unwrap().is_empty());
}

#[test]
fn assertion_rejects_violating_transaction() {
    let mut db = paper_db(ViewSelection::Exhaustive);
    db.execute_sql(
        "CREATE ASSERTION DeptConstraint CHECK (NOT EXISTS ( \
            SELECT Dept.DName FROM Emp, Dept \
            WHERE Dept.DName = Emp.DName \
            GROUP BY Dept.DName, Budget \
            HAVING SUM(Salary) > Budget))",
    )
    .unwrap();
    assert!(db.check_assertions().unwrap().is_empty());
    // A violating update must be rejected without being applied.
    let err = db
        .execute_sql("UPDATE Emp SET Salary = 99999 WHERE EName = 'emp0001_0'")
        .unwrap_err();
    assert!(err.to_string().contains("DeptConstraint"), "{err}");
    // State unchanged: the salary is still 100 and views consistent.
    let rows = match db
        .execute_sql("SELECT Salary FROM Emp WHERE EName = 'emp0001_0'")
        .unwrap()
    {
        spacetime_ivm::database::SqlOutcome::Rows(rows) => rows,
        other => panic!("{other:?}"),
    };
    assert!(rows.contains(&tuple![100]));
    assert!(verify_all_views(&db).unwrap().is_empty());
    // A harmless update still goes through.
    db.execute_sql("UPDATE Emp SET Salary = 110 WHERE EName = 'emp0001_0'")
        .unwrap();
    assert!(db.check_assertions().unwrap().is_empty());
}

#[test]
fn greedy_and_shielding_reach_the_same_runtime_costs() {
    for selection in [ViewSelection::Greedy, ViewSelection::Shielding] {
        let mut db = paper_db(selection);
        let report = match db
            .execute_sql("UPDATE Emp SET Salary = 130 WHERE EName = 'emp0042_3'")
            .unwrap()
        {
            spacetime_ivm::database::SqlOutcome::Updated { report, .. } => report,
            other => panic!("{other:?}"),
        };
        assert_eq!(report.paper_cost(), 5, "{selection:?}");
        assert!(verify_all_views(&db).unwrap().is_empty());
    }
}

//! The logical operator vocabulary.
//!
//! Operators are *structural*: two [`OpKind`] values are equal iff they are
//! the same operator with the same parameters. The memo hash-conses
//! operation nodes on `(OpKind, child group ids)`, so all parameter types
//! here implement `Eq + Hash`.

use std::fmt;

use spacetime_storage::Schema;

use crate::scalar::ScalarExpr;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)` (non-NULL count when an argument is
    /// given).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

impl AggFunc {
    /// Whether the function can be maintained from its own old output value
    /// plus the delta ("adding to or subtracting from the previous
    /// aggregate values", §1). SUM and COUNT qualify; AVG cannot be updated
    /// from the average alone, and MIN/MAX may require re-querying the
    /// group when an extremum leaves.
    pub fn invertible(self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum)
    }

    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// One aggregate in a grouping operator: `name := func(arg)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument (over the input schema); `None` means `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// `func(arg) AS name`.
    pub fn new(func: AggFunc, arg: ScalarExpr, name: impl Into<String>) -> Self {
        AggExpr {
            func,
            arg: Some(arg),
            name: name.into(),
        }
    }

    /// `COUNT(*) AS name`.
    pub fn count_star(name: impl Into<String>) -> Self {
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: name.into(),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}({a})", self.func.name()),
            None => write!(f, "{}(*)", self.func.name()),
        }
    }
}

/// An equi-join condition: pairs of (left column, right column), positions
/// relative to each input's schema, plus an optional residual predicate
/// over the concatenated schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct JoinCondition {
    /// Equi-join column pairs `(left position, right position)`.
    pub equi: Vec<(usize, usize)>,
    /// Residual predicate over `left.schema ++ right.schema`, if any.
    pub residual: Option<ScalarExpr>,
}

impl JoinCondition {
    /// A pure equi-join on the given pairs.
    pub fn on(equi: impl Into<Vec<(usize, usize)>>) -> Self {
        JoinCondition {
            equi: equi.into(),
            residual: None,
        }
    }

    /// Left-side join columns.
    pub fn left_cols(&self) -> Vec<usize> {
        self.equi.iter().map(|&(l, _)| l).collect()
    }

    /// Right-side join columns.
    pub fn right_cols(&self) -> Vec<usize> {
        self.equi.iter().map(|&(_, r)| r).collect()
    }

    /// Whether this is a pure equi-join (no residual).
    pub fn is_pure_equi(&self) -> bool {
        self.residual.is_none()
    }
}

/// A logical operator.
///
/// The shape mirrors the paper's expression-tree nodes: "each leaf node
/// corresponds to a database relation …; each non-leaf node contains an
/// operator (e.g., join, grouping/aggregation), and either one or two
/// children" (§2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Leaf: a database relation (or previously-materialized view) by name.
    Scan {
        /// The catalog table name.
        table: String,
    },
    /// Filter by a predicate over the child schema.
    Select {
        /// The predicate.
        predicate: ScalarExpr,
    },
    /// Generalized projection: computed output columns `(expr, name)` over
    /// the child schema. Multiset semantics: duplicates are kept.
    Project {
        /// Output expressions with their column names.
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Binary equi-join (with optional residual predicate).
    Join {
        /// The join condition.
        condition: JoinCondition,
    },
    /// Grouping/aggregation. Output schema = group columns (in order)
    /// followed by aggregate outputs.
    Aggregate {
        /// Group-by columns (positions in the child schema).
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Duplicate elimination.
    Distinct,
}

impl OpKind {
    /// Number of children this operator takes.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::Scan { .. } => 0,
            OpKind::Join { .. } => 2,
            _ => 1,
        }
    }

    /// Short operator name for displays.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Scan { .. } => "Scan",
            OpKind::Select { .. } => "Select",
            OpKind::Project { .. } => "Project",
            OpKind::Join { .. } => "Join",
            OpKind::Aggregate { .. } => "Aggregate",
            OpKind::Distinct => "Distinct",
        }
    }

    /// Render the operator with column names taken from its children's
    /// output schemas (`inputs` holds one schema per child, so a join's
    /// right-side positions resolve against the right child).
    pub fn describe(&self, inputs: &[&Schema]) -> String {
        // For unary operators, positions resolve against the single input;
        // residual join predicates resolve against the concatenation.
        let unary = inputs.first().copied();
        let col_name = |i: usize| -> String {
            unary
                .and_then(|s| s.column(i))
                .map(|c| c.qualified_name())
                .unwrap_or_else(|| format!("#{i}"))
        };
        match self {
            OpKind::Scan { table } => table.clone(),
            OpKind::Select { predicate } => match unary {
                Some(s) => format!("Select ({})", predicate.display_with(s)),
                None => format!("Select ({predicate})"),
            },
            OpKind::Project { exprs } => {
                let cols: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| match unary {
                        Some(s) => format!("{} AS {n}", e.display_with(s)),
                        None => format!("{e} AS {n}"),
                    })
                    .collect();
                format!("Project ({})", cols.join(", "))
            }
            OpKind::Join { condition } => {
                let left_name = col_name;
                let right_name = |i: usize| -> String {
                    inputs
                        .get(1)
                        .and_then(|s| s.column(i))
                        .map(|c| c.qualified_name())
                        .unwrap_or_else(|| format!("#R{i}"))
                };
                let pairs: Vec<String> = condition
                    .equi
                    .iter()
                    .map(|&(l, r)| format!("{} = {}", left_name(l), right_name(r)))
                    .collect();
                if pairs.is_empty() {
                    "Join (cross)".to_string()
                } else {
                    format!("Join ({})", pairs.join(" AND "))
                }
            }
            OpKind::Aggregate { group_by, aggs } => {
                let gs: Vec<String> = group_by.iter().map(|&g| col_name(g)).collect();
                let asx: Vec<String> = aggs
                    .iter()
                    .map(|a| match (&a.arg, unary) {
                        (Some(arg), Some(s)) => {
                            format!("{}({})", a.func.name(), arg.display_with(s))
                        }
                        _ => a.to_string(),
                    })
                    .collect();
                if gs.is_empty() {
                    format!("Aggregate ({})", asx.join(", "))
                } else {
                    format!("Aggregate ({} BY {})", asx.join(", "), gs.join(", "))
                }
            }
            OpKind::Distinct => "Distinct".to_string(),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::CmpOp;

    #[test]
    fn arities() {
        assert_eq!(OpKind::Scan { table: "T".into() }.arity(), 0);
        assert_eq!(
            OpKind::Join {
                condition: JoinCondition::on(vec![(0, 0)])
            }
            .arity(),
            2
        );
        assert_eq!(OpKind::Distinct.arity(), 1);
    }

    #[test]
    fn join_condition_accessors() {
        let c = JoinCondition::on(vec![(1, 0), (2, 3)]);
        assert_eq!(c.left_cols(), vec![1, 2]);
        assert_eq!(c.right_cols(), vec![0, 3]);
        assert!(c.is_pure_equi());
    }

    #[test]
    fn structural_equality_for_hash_consing() {
        let a = OpKind::Select {
            predicate: ScalarExpr::col_eq_lit(0, 1),
        };
        let b = OpKind::Select {
            predicate: ScalarExpr::col_eq_lit(0, 1),
        };
        let c = OpKind::Select {
            predicate: ScalarExpr::col_eq_lit(0, 2),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn describe_uses_names() {
        let s = Schema::of_table(
            "Emp",
            &[
                ("EName", spacetime_storage::DataType::Str),
                ("DName", spacetime_storage::DataType::Str),
                ("Salary", spacetime_storage::DataType::Int),
            ],
        );
        let agg = OpKind::Aggregate {
            group_by: vec![1],
            aggs: vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        };
        assert_eq!(
            agg.describe(&[&s]),
            "Aggregate (SUM(Emp.Salary) BY Emp.DName)"
        );
        let sel = OpKind::Select {
            predicate: ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(100)),
        };
        assert_eq!(sel.describe(&[&s]), "Select (Emp.Salary > 100)");
    }

    #[test]
    fn count_star_displays() {
        assert_eq!(AggExpr::count_star("n").to_string(), "COUNT(*)");
        assert!(AggFunc::Sum.invertible());
        assert!(!AggFunc::Avg.invertible());
        assert!(!AggFunc::Min.invertible());
    }
}

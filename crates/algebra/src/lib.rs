//! # spacetime-algebra
//!
//! Relational algebra for the `spacetime` reproduction of Ross, Srivastava
//! & Sudarshan (SIGMOD 1996): logical operators, expression trees, and an
//! executor that evaluates trees against the storage catalog while charging
//! page I/Os.
//!
//! The operator set is the one the paper's view language needs —
//! select/project/join (SPJ), grouping/aggregation, and duplicate
//! elimination — over **multiset** semantics:
//!
//! * [`scalar`] — scalar expressions ([`ScalarExpr`]) with SQL three-valued
//!   logic, used for predicates, projections and aggregate arguments.
//! * [`ops`] — the logical operator vocabulary ([`OpKind`], [`AggExpr`],
//!   [`JoinCondition`]).
//! * [`tree`] — schema-validated expression trees ([`ExprNode`],
//!   [`ExprTree`]) with a builder API.
//! * [`keys`] — candidate-key derivation through operators (feeds the
//!   eager-aggregation rewrite and the paper's key-based query
//!   elimination).
//! * [`eval`] — the executor: evaluates a tree to a [`Bag`], selecting
//!   index-backed access paths where the physical model provides them.
//! * [`kernel`] — fused streaming kernels: `Select`/`Project` chains
//!   compiled into flat stage pipelines that push borrowed rows without
//!   materializing per-operator intermediates (`eval` stays the oracle).
//!
//! [`Bag`]: spacetime_storage::Bag

pub mod equiv;
pub mod eval;
pub mod kernel;
pub mod keys;
pub mod ops;
pub mod scalar;
pub mod tree;

pub use equiv::{column_equivalences, ColClasses};
pub use eval::{eval, eval_uncharged};
pub use kernel::{FusedProgram, KernelScratch, KernelStage, PairOutcome};
pub use keys::{cols_contain_key, derive_keys, Key};
pub use ops::{AggExpr, AggFunc, JoinCondition, OpKind};
pub use scalar::ScalarDisplay;
pub use scalar::{BinOp, CmpOp, ScalarExpr};
pub use tree::{derive_schema, ExprNode, ExprTree};

/// Algebra reuses the storage error type: resolution, typing and schema
/// failures are the same vocabulary at both layers.
pub use spacetime_storage::{StorageError as AlgebraError, StorageResult as AlgebraResult};

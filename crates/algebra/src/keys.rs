//! Candidate-key derivation through operators.
//!
//! The paper exploits key information twice:
//!
//! 1. The **eager aggregation** rewrite (Yan–Larson style) that relates the
//!    two trees of Figure 1 is only sound because `DName` is a key of
//!    `Dept`: each `Emp` group joins with exactly one `Dept` tuple, so
//!    grouping can be pushed below the join.
//! 2. **Query elimination on update tracks** (§3.6): "Since DName is a key
//!    for the Dept relation, the result propagated up along E5 and N4
//!    contains all the tuples in the group. Thus no I/O is generated for
//!    Q3d."
//!
//! [`derive_keys`] computes candidate keys (as output column-position sets)
//! of any expression tree from the keys declared in the catalog.

use std::collections::BTreeSet;

use spacetime_storage::Catalog;

use crate::ops::OpKind;
use crate::scalar::ScalarExpr;
use crate::tree::ExprNode;

/// A candidate key: a set of output column positions.
pub type Key = BTreeSet<usize>;

/// Derive candidate keys of `node`'s output, given declared base-table keys.
///
/// The result is minimized (no key is a superset of another) and sorted for
/// determinism. An empty result means "no key known", not "no key exists".
pub fn derive_keys(node: &ExprNode, catalog: &Catalog) -> Vec<Key> {
    let keys = derive(node, catalog);
    minimize(keys)
}

/// Whether `cols` (output positions of `node`) contains a known candidate
/// key of `node`.
pub fn cols_contain_key(node: &ExprNode, catalog: &Catalog, cols: &[usize]) -> bool {
    let cols: BTreeSet<usize> = cols.iter().copied().collect();
    derive_keys(node, catalog)
        .iter()
        .any(|k| k.is_subset(&cols))
}

fn derive(node: &ExprNode, catalog: &Catalog) -> Vec<Key> {
    match &node.op {
        OpKind::Scan { table } => catalog
            .table(table)
            .map(|t| t.keys.iter().map(|k| k.iter().copied().collect()).collect())
            .unwrap_or_default(),
        OpKind::Select { .. } => derive(&node.children[0], catalog),
        OpKind::Distinct => {
            let mut ks = derive(&node.children[0], catalog);
            // The whole row is a key after duplicate elimination.
            ks.push((0..node.schema.arity()).collect());
            ks
        }
        OpKind::Project { exprs } => {
            let child_keys = derive(&node.children[0], catalog);
            // Map each child column to the first output position that is a
            // plain reference to it.
            let position_of = |child_col: usize| -> Option<usize> {
                exprs
                    .iter()
                    .position(|(e, _)| matches!(e, ScalarExpr::Col(c) if *c == child_col))
            };
            child_keys
                .into_iter()
                .filter_map(|k| k.iter().map(|&c| position_of(c)).collect::<Option<Key>>())
                .collect()
        }
        OpKind::Aggregate { group_by, .. } => {
            let mut out: Vec<Key> = Vec::new();
            // The group-by columns (output positions 0..n) are a key.
            out.push((0..group_by.len()).collect());
            // A child key that is a subset of the group-by columns remains
            // a key (each group then holds exactly one child row).
            let child_keys = derive(&node.children[0], catalog);
            let gb_set: BTreeSet<usize> = group_by.iter().copied().collect();
            for k in child_keys {
                if k.is_subset(&gb_set) {
                    let mapped: Key = k
                        .iter()
                        .map(|c| group_by.iter().position(|g| g == c).expect("subset"))
                        .collect();
                    out.push(mapped);
                }
            }
            out
        }
        OpKind::Join { condition } => {
            let left = &node.children[0];
            let right = &node.children[1];
            let lkeys = derive(left, catalog);
            let rkeys = derive(right, catalog);
            let larity = left.schema.arity();
            let lcols: BTreeSet<usize> = condition.left_cols().into_iter().collect();
            let rcols: BTreeSet<usize> = condition.right_cols().into_iter().collect();
            let right_joined_on_key = rkeys.iter().any(|k| k.is_subset(&rcols));
            let left_joined_on_key = lkeys.iter().any(|k| k.is_subset(&lcols));

            let shift = |k: &Key| -> Key { k.iter().map(|&c| c + larity).collect() };
            let mut out: Vec<Key> = Vec::new();
            // Each left tuple matches ≤ 1 right tuple ⇒ left keys survive.
            if right_joined_on_key {
                out.extend(lkeys.iter().cloned());
            }
            if left_joined_on_key {
                out.extend(rkeys.iter().map(&shift));
            }
            // A (left key ∪ right key) pair is always a key of the join.
            for lk in &lkeys {
                for rk in &rkeys {
                    let mut combined = lk.clone();
                    combined.extend(shift(rk));
                    out.push(combined);
                }
            }
            out
        }
    }
}

fn minimize(mut keys: Vec<Key>) -> Vec<Key> {
    keys.sort();
    keys.dedup();
    let copy = keys.clone();
    keys.retain(|k| !copy.iter().any(|other| other != k && other.is_subset(k)));
    keys.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AggExpr, AggFunc};
    use crate::tree::ExprNode;
    use spacetime_storage::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Emp", &["EName"]).unwrap();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        cat
    }

    fn key(cols: &[usize]) -> Key {
        cols.iter().copied().collect()
    }

    #[test]
    fn scan_returns_declared_keys() {
        let cat = catalog();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        assert_eq!(derive_keys(&dept, &cat), vec![key(&[0])]);
    }

    #[test]
    fn join_on_right_key_preserves_left_keys() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        // Emp ⋈ Dept on DName: Dept is joined on its key, so EName (pos 0)
        // remains a key of the output.
        let j = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let keys = derive_keys(&j, &cat);
        assert!(keys.contains(&key(&[0])), "{keys:?}");
        // Dept's key does NOT survive (a department matches many employees).
        assert!(!keys.contains(&key(&[3])), "{keys:?}");
    }

    #[test]
    fn join_without_key_gives_combined_key() {
        let mut cat = catalog();
        // Strip the key declarations to exercise the combined-key fallback.
        cat.table_mut("Emp").unwrap().keys.push(vec![0]);
        let emp1 = ExprNode::scan(&cat, "Emp").unwrap();
        let emp2 = ExprNode::scan(&cat, "Emp").unwrap();
        let j = ExprNode::join_on(emp1, emp2, &[("DName", "DName")]).unwrap();
        let keys = derive_keys(&j, &cat);
        assert!(keys.contains(&key(&[0, 3])), "{keys:?}");
    }

    #[test]
    fn aggregate_group_cols_are_key() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        assert_eq!(derive_keys(&agg, &cat), vec![key(&[0])]);
    }

    #[test]
    fn select_preserves_and_distinct_adds_row_key() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let sel = ExprNode::select(emp.clone(), ScalarExpr::col_eq_lit(1, "Sales")).unwrap();
        assert_eq!(derive_keys(&sel, &cat), vec![key(&[0])]);
        let proj = ExprNode::project_cols(emp, &[1, 2]).unwrap();
        assert!(
            derive_keys(&proj, &cat).is_empty(),
            "key column projected away"
        );
        let d = ExprNode::distinct(proj).unwrap();
        assert_eq!(derive_keys(&d, &cat), vec![key(&[0, 1])]);
    }

    #[test]
    fn projection_remaps_keys() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let p = ExprNode::project_cols(emp, &[2, 0]).unwrap();
        assert_eq!(derive_keys(&p, &cat), vec![key(&[1])]);
    }

    #[test]
    fn cols_contain_key_checks_subset() {
        let cat = catalog();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        assert!(cols_contain_key(&dept, &cat, &[0, 2]));
        assert!(!cols_contain_key(&dept, &cat, &[1, 2]));
    }

    #[test]
    fn minimize_removes_supersets() {
        let ks = minimize(vec![key(&[0, 1]), key(&[0]), key(&[0, 1])]);
        assert_eq!(ks, vec![key(&[0])]);
    }
}

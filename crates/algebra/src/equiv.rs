//! Column-equivalence analysis.
//!
//! Equi-join conditions and `col = col` selections make output columns
//! provably equal (`Emp.DName = Dept.DName` means the two columns carry
//! the same value in every output tuple). Rewrite rules use this: the
//! eager-aggregation rule's "grouping determines the join key" condition
//! holds as soon as a join column is *equivalent* to a grouping column,
//! not only when it syntactically is one — which is exactly what the
//! paper's Example 3.1 (the three-way `ADeptsStatus` join) requires.

use std::collections::BTreeSet;

use crate::ops::OpKind;
use crate::scalar::{CmpOp, ScalarExpr};
use crate::tree::ExprNode;

/// Union-find over output columns: `classes[i]` is column `i`'s class
/// representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColClasses {
    parent: Vec<usize>,
}

impl ColClasses {
    fn fresh(n: usize) -> Self {
        ColClasses {
            parent: (0..n).collect(),
        }
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[drop] = keep;
        }
    }

    /// Whether two columns are provably equal.
    pub fn same(&self, a: usize, b: usize) -> bool {
        a < self.parent.len() && b < self.parent.len() && self.find(a) == self.find(b)
    }

    /// Whether `col` is equivalent to *some* column of `set`.
    pub fn intersects(&self, col: usize, set: &[usize]) -> bool {
        set.iter().any(|&s| self.same(col, s))
    }

    /// All columns equivalent to `col` (including itself).
    pub fn class_of(&self, col: usize) -> BTreeSet<usize> {
        let r = self.find(col);
        (0..self.parent.len())
            .filter(|&i| self.find(i) == r)
            .collect()
    }
}

/// Derive the provable column equivalences of a tree's output.
pub fn column_equivalences(node: &ExprNode) -> ColClasses {
    match &node.op {
        OpKind::Scan { .. } => ColClasses::fresh(node.schema.arity()),
        OpKind::Select { predicate } => {
            let mut classes = column_equivalences(&node.children[0]);
            apply_predicate(&mut classes, predicate);
            classes
        }
        OpKind::Distinct => column_equivalences(&node.children[0]),
        OpKind::Project { exprs } => {
            let child = column_equivalences(&node.children[0]);
            let mut classes = ColClasses::fresh(exprs.len());
            for i in 0..exprs.len() {
                for j in (i + 1)..exprs.len() {
                    match (&exprs[i].0, &exprs[j].0) {
                        (ScalarExpr::Col(a), ScalarExpr::Col(b)) if child.same(*a, *b) => {
                            classes.union(i, j);
                        }
                        // Identical computed expressions are also equal.
                        (ea, eb) if ea == eb => classes.union(i, j),
                        _ => {}
                    }
                }
            }
            classes
        }
        OpKind::Join { condition } => {
            let left = column_equivalences(&node.children[0]);
            let right = column_equivalences(&node.children[1]);
            let la = node.children[0].schema.arity();
            let n = node.schema.arity();
            let mut classes = ColClasses::fresh(n);
            for i in 0..la {
                for j in (i + 1)..la {
                    if left.same(i, j) {
                        classes.union(i, j);
                    }
                }
            }
            for i in 0..(n - la) {
                for j in (i + 1)..(n - la) {
                    if right.same(i, j) {
                        classes.union(la + i, la + j);
                    }
                }
            }
            for &(l, r) in &condition.equi {
                classes.union(l, r + la);
            }
            if let Some(res) = &condition.residual {
                apply_predicate(&mut classes, res);
            }
            classes
        }
        OpKind::Aggregate { group_by, .. } => {
            let child = column_equivalences(&node.children[0]);
            let mut classes = ColClasses::fresh(node.schema.arity());
            for i in 0..group_by.len() {
                for j in (i + 1)..group_by.len() {
                    if child.same(group_by[i], group_by[j]) {
                        classes.union(i, j);
                    }
                }
            }
            classes
        }
    }
}

fn apply_predicate(classes: &mut ColClasses, predicate: &ScalarExpr) {
    match predicate {
        ScalarExpr::And(parts) => {
            for p in parts {
                apply_predicate(classes, p);
            }
        }
        ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } => {
            if let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (&**left, &**right) {
                classes.union(*a, *b);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::JoinCondition;
    use crate::tree::ExprNode;
    use spacetime_storage::{Catalog, DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["A", "B", "C"] {
            cat.create_table(
                name,
                Schema::of_table(name, &[("k", DataType::Int), ("v", DataType::Int)]),
            )
            .unwrap();
        }
        cat
    }

    #[test]
    fn join_equates_its_columns() {
        let cat = catalog();
        let a = ExprNode::scan(&cat, "A").unwrap();
        let b = ExprNode::scan(&cat, "B").unwrap();
        let j = ExprNode::join(a, b, JoinCondition::on(vec![(0, 0)])).unwrap();
        let c = column_equivalences(&j);
        assert!(c.same(0, 2), "A.k ≡ B.k");
        assert!(!c.same(1, 3));
    }

    #[test]
    fn equivalence_chains_through_nested_joins() {
        // (A ⋈ B on k) ⋈ C on A.k = C.k: then B.k ≡ C.k transitively.
        let cat = catalog();
        let a = ExprNode::scan(&cat, "A").unwrap();
        let b = ExprNode::scan(&cat, "B").unwrap();
        let c = ExprNode::scan(&cat, "C").unwrap();
        let ab = ExprNode::join(a, b, JoinCondition::on(vec![(0, 0)])).unwrap();
        let abc = ExprNode::join(ab, c, JoinCondition::on(vec![(0, 0)])).unwrap();
        let cls = column_equivalences(&abc);
        assert!(cls.same(2, 4), "B.k ≡ C.k via A.k");
        assert!(cls.intersects(4, &[0, 2]));
    }

    #[test]
    fn select_equality_counts() {
        let cat = catalog();
        let a = ExprNode::scan(&cat, "A").unwrap();
        let s = ExprNode::select(a, ScalarExpr::col_eq_col(0, 1)).unwrap();
        let c = column_equivalences(&s);
        assert!(c.same(0, 1));
    }

    #[test]
    fn aggregate_restricts_to_group_columns() {
        let cat = catalog();
        let a = ExprNode::scan(&cat, "A").unwrap();
        let b = ExprNode::scan(&cat, "B").unwrap();
        let j = ExprNode::join(a, b, JoinCondition::on(vec![(0, 0)])).unwrap();
        let agg =
            ExprNode::aggregate(j, vec![0, 2], vec![crate::ops::AggExpr::count_star("n")]).unwrap();
        let c = column_equivalences(&agg);
        assert!(c.same(0, 1), "both group cols were the equated join cols");
        assert!(!c.same(0, 2), "the COUNT output is not equivalent");
    }

    #[test]
    fn projection_maps_classes() {
        let cat = catalog();
        let a = ExprNode::scan(&cat, "A").unwrap();
        let b = ExprNode::scan(&cat, "B").unwrap();
        let j = ExprNode::join(a, b, JoinCondition::on(vec![(0, 0)])).unwrap();
        let p = ExprNode::project_cols(j, &[2, 0, 1]).unwrap();
        let c = column_equivalences(&p);
        assert!(c.same(0, 1), "B.k ≡ A.k survives reordering");
        assert!(!c.same(0, 2));
    }
}

//! Fused streaming kernels for access-free operator chains.
//!
//! A [`FusedProgram`] compiles a `Select`/`Project` chain (the access-free
//! prefixes `level_plan` fingerprints for the shared-delta cache) into a
//! flat pipeline of [`KernelStage`]s. Delta elements are then *pushed*
//! through the whole chain one at a time — no intermediate `Delta` or
//! `Bag` is materialized per operator, and a tuple that a filter drops
//! costs nothing downstream. Rows travel as borrowed `&[Value]` slices:
//! projections evaluate into caller-provided scratch buffers
//! ([`KernelScratch`], typically drawn from the storage arena), and a
//! fresh [`Tuple`] is only allocated for rows that survive the entire
//! chain.
//!
//! The per-element semantics replicate the per-operator propagation rules
//! (`spacetime-delta`) exactly, including the modify handling that makes
//! batched and per-key propagation bit-identical:
//!
//! * a filter splits a modify pair when exactly one side passes — the
//!   surviving side continues alone as a pure insert or delete;
//! * a projection keeps the pair; pairs a projection makes identical stay
//!   identical through every later stage and are dropped by the caller's
//!   `push_modify`, exactly as the stepwise path drops them at the stage
//!   that collapsed them.
//!
//! Kernels evaluate no queries and charge no I/O; compilation refuses any
//! op that would (`Join`/`Aggregate`/`Distinct` return `None`).

use spacetime_storage::{StorageResult, Tuple, Value};

use crate::ops::OpKind;
use crate::scalar::ScalarExpr;

/// One fused pipeline step.
#[derive(Debug, Clone)]
pub enum KernelStage {
    /// Keep rows satisfying the predicate (`Select`).
    Filter(ScalarExpr),
    /// Replace the row with the evaluated expressions (`Project`).
    Map(Vec<ScalarExpr>),
}

/// A compiled `Select`/`Project` chain.
#[derive(Debug, Clone)]
pub struct FusedProgram {
    stages: Vec<KernelStage>,
}

/// What a modify pair became after the chain.
#[derive(Debug, Clone, PartialEq)]
pub enum PairOutcome {
    /// Both sides survived every filter: still a modification.
    Modify(Tuple, Tuple),
    /// Only the old side survived: a deletion.
    DeleteOld(Tuple),
    /// Only the new side survived: an insertion.
    InsertNew(Tuple),
}

/// Reusable row buffers for one kernel invocation: two ping-pong buffers
/// per side of a modify pair. Draw these from the transaction arena and
/// return them afterwards — the buffers grow to the widest row once and
/// are then reused for every element of every delta.
#[derive(Debug, Default)]
pub struct KernelScratch {
    old: LaneBufs,
    new: LaneBufs,
}

impl KernelScratch {
    /// Scratch backed by the given buffers (arena-pooled).
    pub fn from_bufs(bufs: [Vec<Value>; 4]) -> Self {
        let [a, b, c, d] = bufs;
        KernelScratch {
            old: LaneBufs { a, b },
            new: LaneBufs { a: c, b: d },
        }
    }

    /// Recover the buffers for return to the arena.
    pub fn into_bufs(self) -> [Vec<Value>; 4] {
        [self.old.a, self.old.b, self.new.a, self.new.b]
    }
}

#[derive(Debug, Default)]
struct LaneBufs {
    a: Vec<Value>,
    b: Vec<Value>,
}

/// Which storage currently holds a lane's row.
#[derive(Clone, Copy, PartialEq)]
enum Cur {
    /// The untouched input tuple.
    Input,
    /// Buffer `a`.
    A,
    /// Buffer `b`.
    B,
}

/// One side of an element travelling through the chain: the input tuple
/// plus the ping-pong buffers a `Map` writes into.
struct Lane<'t, 'b> {
    input: &'t Tuple,
    bufs: &'b mut LaneBufs,
    cur: Cur,
}

impl<'t> Lane<'t, '_> {
    fn new<'b>(input: &'t Tuple, bufs: &'b mut LaneBufs) -> Lane<'t, 'b> {
        Lane {
            input,
            bufs,
            cur: Cur::Input,
        }
    }

    fn row(&self) -> &[Value] {
        match self.cur {
            Cur::Input => self.input.values(),
            Cur::A => &self.bufs.a,
            Cur::B => &self.bufs.b,
        }
    }

    fn map(&mut self, exprs: &[ScalarExpr]) -> StorageResult<()> {
        let LaneBufs { a, b } = &mut *self.bufs;
        let (src, dst, next) = match self.cur {
            Cur::Input => (self.input.values(), a, Cur::A),
            Cur::B => (&**b, a, Cur::A),
            Cur::A => (&**a, b, Cur::B),
        };
        dst.clear();
        for e in exprs {
            dst.push(e.eval_slice(src)?);
        }
        self.cur = next;
        Ok(())
    }

    /// The surviving row as a tuple: the input is refcount-cloned, a
    /// mapped row is drained out of its buffer (capacity stays pooled).
    fn finish(self) -> Tuple {
        match self.cur {
            Cur::Input => self.input.clone(),
            Cur::A => Tuple::from_values(self.bufs.a.drain(..)),
            Cur::B => Tuple::from_values(self.bufs.b.drain(..)),
        }
    }
}

impl FusedProgram {
    /// Compile an op chain into a program, or `None` if any op poses
    /// queries (only `Select`/`Project` fuse; pass ops leaf-side first,
    /// without the leading `Scan`).
    pub fn compile<'a>(ops: impl IntoIterator<Item = &'a OpKind>) -> Option<FusedProgram> {
        let mut stages = Vec::new();
        for op in ops {
            match op {
                OpKind::Select { predicate } => stages.push(KernelStage::Filter(predicate.clone())),
                OpKind::Project { exprs } => stages.push(KernelStage::Map(
                    exprs.iter().map(|(e, _)| e.clone()).collect(),
                )),
                _ => return None,
            }
        }
        Some(FusedProgram { stages })
    }

    /// Number of fused stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Push a single-sided element (an insert or a delete) through the
    /// chain. `None` means a filter dropped it.
    pub fn apply_one(
        &self,
        t: &Tuple,
        scratch: &mut KernelScratch,
    ) -> StorageResult<Option<Tuple>> {
        let mut lane = Lane::new(t, &mut scratch.old);
        for stage in &self.stages {
            match stage {
                KernelStage::Filter(p) => {
                    if !p.eval_predicate_slice(lane.row())? {
                        return Ok(None);
                    }
                }
                KernelStage::Map(exprs) => lane.map(exprs)?,
            }
        }
        Ok(Some(lane.finish()))
    }

    /// Push a modify pair through the chain, tracking the split state a
    /// per-operator walk would produce. `None` means both sides were
    /// filtered out.
    pub fn apply_pair(
        &self,
        old: &Tuple,
        new: &Tuple,
        scratch: &mut KernelScratch,
    ) -> StorageResult<Option<PairOutcome>> {
        let mut old_lane = Some(Lane::new(old, &mut scratch.old));
        let mut new_lane = Some(Lane::new(new, &mut scratch.new));
        for stage in &self.stages {
            match stage {
                KernelStage::Filter(p) => {
                    if let Some(lane) = &old_lane {
                        if !p.eval_predicate_slice(lane.row())? {
                            old_lane = None;
                        }
                    }
                    if let Some(lane) = &new_lane {
                        if !p.eval_predicate_slice(lane.row())? {
                            new_lane = None;
                        }
                    }
                    if old_lane.is_none() && new_lane.is_none() {
                        return Ok(None);
                    }
                }
                KernelStage::Map(exprs) => {
                    if let Some(lane) = &mut old_lane {
                        lane.map(exprs)?;
                    }
                    if let Some(lane) = &mut new_lane {
                        lane.map(exprs)?;
                    }
                }
            }
        }
        Ok(Some(match (old_lane, new_lane) {
            (Some(o), Some(n)) => PairOutcome::Modify(o.finish(), n.finish()),
            (Some(o), None) => PairOutcome::DeleteOld(o.finish()),
            (None, Some(n)) => PairOutcome::InsertNew(n.finish()),
            (None, None) => unreachable!("both-dropped pairs return early"),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::CmpOp;
    use spacetime_storage::tuple;

    fn gt100_then_project() -> FusedProgram {
        // SELECT col1, col2*2 WHERE col2 > 100
        FusedProgram::compile(&[
            OpKind::Select {
                predicate: ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(100)),
            },
            OpKind::Project {
                exprs: vec![
                    (ScalarExpr::col(1), "DName".into()),
                    (
                        ScalarExpr::bin(
                            crate::scalar::BinOp::Mul,
                            ScalarExpr::col(2),
                            ScalarExpr::lit(2),
                        ),
                        "Double".into(),
                    ),
                ],
            },
        ])
        .expect("select/project chain compiles")
    }

    #[test]
    fn compile_refuses_access_ops() {
        assert!(FusedProgram::compile(&[OpKind::Distinct]).is_none());
    }

    #[test]
    fn single_sided_filters_and_maps() {
        let prog = gt100_then_project();
        let mut scratch = KernelScratch::default();
        let kept = prog
            .apply_one(&tuple!["a", "Sales", 120], &mut scratch)
            .unwrap();
        assert_eq!(kept, Some(tuple!["Sales", 240]));
        let dropped = prog
            .apply_one(&tuple!["b", "Sales", 90], &mut scratch)
            .unwrap();
        assert_eq!(dropped, None);
    }

    #[test]
    fn pair_splits_on_filter_disagreement() {
        let prog = gt100_then_project();
        let mut scratch = KernelScratch::default();
        // Old fails the filter, new passes: becomes an insert of the new.
        let out = prog
            .apply_pair(
                &tuple!["a", "Sales", 90],
                &tuple!["a", "Sales", 130],
                &mut scratch,
            )
            .unwrap();
        assert_eq!(out, Some(PairOutcome::InsertNew(tuple!["Sales", 260])));
        // Both pass: still a pair.
        let out = prog
            .apply_pair(
                &tuple!["a", "Sales", 110],
                &tuple!["a", "Sales", 130],
                &mut scratch,
            )
            .unwrap();
        assert_eq!(
            out,
            Some(PairOutcome::Modify(tuple!["Sales", 220], tuple!["Sales", 260]))
        );
        // Both fail: dropped.
        let out = prog
            .apply_pair(
                &tuple!["a", "Sales", 10],
                &tuple!["a", "Sales", 20],
                &mut scratch,
            )
            .unwrap();
        assert_eq!(out, None);
    }

    #[test]
    fn identity_chain_borrows_the_input() {
        let prog = FusedProgram::compile(&[OpKind::Select {
            predicate: ScalarExpr::lit(true),
        }])
        .unwrap();
        let mut scratch = KernelScratch::default();
        let t = tuple!["x", 1];
        let out = prog.apply_one(&t, &mut scratch).unwrap().unwrap();
        assert_eq!(out, t);
    }
}

//! Scalar expressions over tuples.
//!
//! Column references are **positional** (resolved against the input schema
//! when a tree is built); this gives expressions a canonical structural
//! identity, which the memo (`spacetime-memo`) relies on for hash-consing.
//!
//! Comparison uses SQL three-valued logic: a comparison involving NULL is
//! *unknown*, and predicates treat unknown as false ([`ScalarExpr::eval_predicate`]).

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use spacetime_storage::{DataType, Schema, StorageError, StorageResult, Tuple, Value};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A scalar expression evaluated against one tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarExpr {
    /// Column at position `usize` of the input tuple.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Arithmetic.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Comparison (three-valued).
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// N-ary conjunction (Kleene AND); empty = TRUE.
    And(Vec<ScalarExpr>),
    /// N-ary disjunction (Kleene OR); empty = FALSE.
    Or(Vec<ScalarExpr>),
    /// Negation (three-valued).
    Not(Box<ScalarExpr>),
    /// `IS NULL`.
    IsNull(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Column reference.
    pub fn col(i: usize) -> Self {
        ScalarExpr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Lit(v.into())
    }

    /// `left op right` arithmetic.
    pub fn bin(op: BinOp, left: ScalarExpr, right: ScalarExpr) -> Self {
        ScalarExpr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `left op right` comparison.
    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> Self {
        ScalarExpr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Column-equals-column (the equi-join shape).
    pub fn col_eq_col(a: usize, b: usize) -> Self {
        Self::cmp(CmpOp::Eq, Self::col(a), Self::col(b))
    }

    /// Column-equals-literal.
    pub fn col_eq_lit(c: usize, v: impl Into<Value>) -> Self {
        Self::cmp(CmpOp::Eq, Self::col(c), Self::lit(v))
    }

    /// Conjunction of two predicates, flattening nested ANDs.
    pub fn and(self, other: ScalarExpr) -> Self {
        let mut parts = Vec::new();
        for e in [self, other] {
            match e {
                ScalarExpr::And(mut xs) => parts.append(&mut xs),
                x => parts.push(x),
            }
        }
        ScalarExpr::And(parts)
    }

    /// Evaluate against a tuple, producing a value (NULL for unknown
    /// comparisons).
    pub fn eval(&self, tuple: &Tuple) -> StorageResult<Value> {
        self.eval_slice(tuple.values())
    }

    /// [`ScalarExpr::eval`] over a borrowed value slice. The fused kernel
    /// path evaluates rows held in arena scratch buffers, which never
    /// become `Tuple`s unless they survive the whole chain.
    pub fn eval_slice(&self, row: &[Value]) -> StorageResult<Value> {
        match self {
            ScalarExpr::Col(i) => {
                row.get(*i)
                    .cloned()
                    .ok_or_else(|| StorageError::SchemaMismatch {
                        detail: format!(
                            "column position {i} out of range (arity {})",
                            row.len()
                        ),
                    })
            }
            ScalarExpr::Lit(v) => Ok(v.clone()),
            ScalarExpr::Bin { op, left, right } => {
                let l = left.eval_slice(row)?;
                let r = right.eval_slice(row)?;
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => l.div(&r),
                }
            }
            ScalarExpr::Cmp { op, left, right } => {
                let l = left.eval_slice(row)?;
                let r = right.eval_slice(row)?;
                Ok(match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.test(ord)),
                })
            }
            ScalarExpr::And(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval_slice(row)? {
                        Value::Bool(false) => return Ok(Value::Bool(false)),
                        Value::Bool(true) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(StorageError::TypeError(format!(
                                "AND operand evaluated to non-boolean {other}"
                            )))
                        }
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(true)
                })
            }
            ScalarExpr::Or(parts) => {
                let mut saw_null = false;
                for p in parts {
                    match p.eval_slice(row)? {
                        Value::Bool(true) => return Ok(Value::Bool(true)),
                        Value::Bool(false) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(StorageError::TypeError(format!(
                                "OR operand evaluated to non-boolean {other}"
                            )))
                        }
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
            ScalarExpr::Not(inner) => match inner.eval_slice(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(StorageError::TypeError(format!(
                    "NOT operand evaluated to non-boolean {other}"
                ))),
            },
            ScalarExpr::IsNull(inner) => Ok(Value::Bool(inner.eval_slice(row)?.is_null())),
        }
    }

    /// [`ScalarExpr::eval_predicate`] over a borrowed value slice (the
    /// fused kernel filter path).
    pub fn eval_predicate_slice(&self, row: &[Value]) -> StorageResult<bool> {
        match self.eval_slice(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(StorageError::TypeError(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// Evaluate as a filter predicate: unknown (NULL) is false.
    pub fn eval_predicate(&self, tuple: &Tuple) -> StorageResult<bool> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(StorageError::TypeError(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// Static result type against an input schema.
    pub fn dtype(&self, schema: &Schema) -> StorageResult<DataType> {
        match self {
            ScalarExpr::Col(i) => {
                schema
                    .column(*i)
                    .map(|c| c.dtype)
                    .ok_or_else(|| StorageError::SchemaMismatch {
                        detail: format!("column position {i} out of range for schema [{schema}]"),
                    })
            }
            ScalarExpr::Lit(v) => Ok(v.data_type().unwrap_or(DataType::Str)),
            ScalarExpr::Bin { op, left, right } => {
                let l = left.dtype(schema)?;
                let r = right.dtype(schema)?;
                match (l, r) {
                    (DataType::Int, DataType::Int) if *op != BinOp::Div => Ok(DataType::Int),
                    (DataType::Int, DataType::Int) => Ok(DataType::Int),
                    (DataType::Int | DataType::Double, DataType::Int | DataType::Double) => {
                        Ok(DataType::Double)
                    }
                    _ => Err(StorageError::TypeError(format!(
                        "cannot apply `{}` to {l} and {r}",
                        op.symbol()
                    ))),
                }
            }
            ScalarExpr::Cmp { .. }
            | ScalarExpr::And(_)
            | ScalarExpr::Or(_)
            | ScalarExpr::Not(_)
            | ScalarExpr::IsNull(_) => Ok(DataType::Bool),
        }
    }

    /// All column positions referenced.
    pub fn columns_used(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<usize>) {
        match self {
            ScalarExpr::Col(i) => {
                out.insert(*i);
            }
            ScalarExpr::Lit(_) => {}
            ScalarExpr::Bin { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            ScalarExpr::And(xs) | ScalarExpr::Or(xs) => {
                for x in xs {
                    x.collect_columns(out);
                }
            }
            ScalarExpr::Not(x) | ScalarExpr::IsNull(x) => x.collect_columns(out),
        }
    }

    /// Rewrite column positions through `map` (old position → new
    /// position); positions absent from the map are an error — the caller
    /// must guarantee totality over [`Self::columns_used`].
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> StorageResult<ScalarExpr> {
        Ok(match self {
            ScalarExpr::Col(i) => {
                ScalarExpr::Col(map(*i).ok_or_else(|| StorageError::SchemaMismatch {
                    detail: format!("column position {i} has no image under remapping"),
                })?)
            }
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Bin { op, left, right } => ScalarExpr::Bin {
                op: *op,
                left: Box::new(left.remap_columns(map)?),
                right: Box::new(right.remap_columns(map)?),
            },
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Box::new(left.remap_columns(map)?),
                right: Box::new(right.remap_columns(map)?),
            },
            ScalarExpr::And(xs) => ScalarExpr::And(
                xs.iter()
                    .map(|x| x.remap_columns(map))
                    .collect::<StorageResult<_>>()?,
            ),
            ScalarExpr::Or(xs) => ScalarExpr::Or(
                xs.iter()
                    .map(|x| x.remap_columns(map))
                    .collect::<StorageResult<_>>()?,
            ),
            ScalarExpr::Not(x) => ScalarExpr::Not(Box::new(x.remap_columns(map)?)),
            ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(x.remap_columns(map)?)),
        })
    }

    /// Replace every column reference by an expression (used to compose
    /// projections: `π_e1 ∘ π_e2` substitutes `e2`'s outputs into `e1`).
    pub fn substitute(&self, f: &dyn Fn(usize) -> ScalarExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => f(*i),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Bin { op, left, right } => ScalarExpr::Bin {
                op: *op,
                left: Box::new(left.substitute(f)),
                right: Box::new(right.substitute(f)),
            },
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Box::new(left.substitute(f)),
                right: Box::new(right.substitute(f)),
            },
            ScalarExpr::And(xs) => ScalarExpr::And(xs.iter().map(|x| x.substitute(f)).collect()),
            ScalarExpr::Or(xs) => ScalarExpr::Or(xs.iter().map(|x| x.substitute(f)).collect()),
            ScalarExpr::Not(x) => ScalarExpr::Not(Box::new(x.substitute(f))),
            ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(x.substitute(f))),
        }
    }

    /// Render against a schema (column positions become names).
    pub fn display_with<'a>(&'a self, schema: &'a Schema) -> ScalarDisplay<'a> {
        ScalarDisplay {
            expr: self,
            schema: Some(schema),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        ScalarDisplay {
            expr: self,
            schema: None,
        }
        .fmt(f)
    }
}

/// Display adapter: renders column positions as names when a schema is
/// supplied.
pub struct ScalarDisplay<'a> {
    expr: &'a ScalarExpr,
    schema: Option<&'a Schema>,
}

impl fmt::Display for ScalarDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let column_name = |i: usize| -> String {
            match self.schema.and_then(|s| s.column(i)) {
                Some(c) => c.qualified_name(),
                None => format!("#{i}"),
            }
        };
        fn go(
            e: &ScalarExpr,
            f: &mut fmt::Formatter<'_>,
            name: &dyn Fn(usize) -> String,
        ) -> fmt::Result {
            match e {
                ScalarExpr::Col(i) => write!(f, "{}", name(*i)),
                ScalarExpr::Lit(v) => write!(f, "{v}"),
                ScalarExpr::Bin { op, left, right } => {
                    write!(f, "(")?;
                    go(left, f, name)?;
                    write!(f, " {} ", op.symbol())?;
                    go(right, f, name)?;
                    write!(f, ")")
                }
                ScalarExpr::Cmp { op, left, right } => {
                    go(left, f, name)?;
                    write!(f, " {} ", op.symbol())?;
                    go(right, f, name)
                }
                ScalarExpr::And(xs) => {
                    if xs.is_empty() {
                        return write!(f, "TRUE");
                    }
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " AND ")?;
                        }
                        go(x, f, name)?;
                    }
                    Ok(())
                }
                ScalarExpr::Or(xs) => {
                    if xs.is_empty() {
                        return write!(f, "FALSE");
                    }
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " OR ")?;
                        }
                        go(x, f, name)?;
                    }
                    Ok(())
                }
                ScalarExpr::Not(x) => {
                    write!(f, "NOT (")?;
                    go(x, f, name)?;
                    write!(f, ")")
                }
                ScalarExpr::IsNull(x) => {
                    go(x, f, name)?;
                    write!(f, " IS NULL")
                }
            }
        }
        go(self.expr, f, &column_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spacetime_storage::tuple;

    #[test]
    fn arithmetic_and_comparison() {
        let t = tuple![3, 4];
        let e = ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(0), ScalarExpr::col(1));
        assert_eq!(e.eval(&t).unwrap(), Value::Int(12));
        let p = ScalarExpr::cmp(CmpOp::Gt, e, ScalarExpr::lit(10));
        assert!(p.eval_predicate(&t).unwrap());
    }

    #[test]
    fn three_valued_logic() {
        let t = tuple![Value::Null, 1];
        // NULL > 0 is unknown → filtered out.
        let p = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(0));
        assert_eq!(p.eval(&t).unwrap(), Value::Null);
        assert!(!p.eval_predicate(&t).unwrap());
        // NOT unknown is unknown.
        let n = ScalarExpr::Not(Box::new(p.clone()));
        assert_eq!(n.eval(&t).unwrap(), Value::Null);
        // unknown AND false = false; unknown OR true = true (Kleene).
        let and = p.clone().and(ScalarExpr::lit(false));
        assert_eq!(and.eval(&t).unwrap(), Value::Bool(false));
        let or = ScalarExpr::Or(vec![p, ScalarExpr::lit(true)]);
        assert_eq!(or.eval(&t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_is_two_valued() {
        let t = tuple![Value::Null];
        let p = ScalarExpr::IsNull(Box::new(ScalarExpr::col(0)));
        assert_eq!(p.eval(&t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn and_flattens() {
        let a = ScalarExpr::col_eq_lit(0, 1).and(ScalarExpr::col_eq_lit(1, 2));
        let b = a.clone().and(ScalarExpr::col_eq_lit(2, 3));
        match b {
            ScalarExpr::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened AND, got {other:?}"),
        }
        let _ = a;
    }

    #[test]
    fn columns_used_and_remap() {
        let e = ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::col(2),
            ScalarExpr::bin(BinOp::Add, ScalarExpr::col(5), ScalarExpr::lit(1)),
        );
        assert_eq!(e.columns_used().into_iter().collect::<Vec<_>>(), vec![2, 5]);
        let shifted = e.remap_columns(&|c| Some(c + 10)).unwrap();
        assert_eq!(
            shifted.columns_used().into_iter().collect::<Vec<_>>(),
            vec![12, 15]
        );
        assert!(e
            .remap_columns(&|c| if c == 2 { Some(0) } else { None })
            .is_err());
    }

    #[test]
    fn dtype_inference() {
        let s = Schema::of_table("T", &[("a", DataType::Int), ("b", DataType::Double)]);
        let e = ScalarExpr::bin(BinOp::Add, ScalarExpr::col(0), ScalarExpr::col(1));
        assert_eq!(e.dtype(&s).unwrap(), DataType::Double);
        let i = ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(0), ScalarExpr::col(0));
        assert_eq!(i.dtype(&s).unwrap(), DataType::Int);
        let c = ScalarExpr::col_eq_col(0, 1);
        assert_eq!(c.dtype(&s).unwrap(), DataType::Bool);
        assert!(ScalarExpr::col(9).dtype(&s).is_err());
    }

    #[test]
    fn eval_error_paths() {
        let t = tuple![1];
        assert!(ScalarExpr::col(3).eval(&t).is_err());
        let bad_and = ScalarExpr::And(vec![ScalarExpr::lit(7)]);
        assert!(bad_and.eval(&t).is_err());
        let bad_not = ScalarExpr::Not(Box::new(ScalarExpr::lit("x")));
        assert!(bad_not.eval(&t).is_err());
    }

    #[test]
    fn display_with_schema_uses_names() {
        let s = Schema::of_table(
            "Dept",
            &[("DName", DataType::Str), ("Budget", DataType::Int)],
        );
        let p = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(100));
        assert_eq!(p.display_with(&s).to_string(), "Dept.Budget > 100");
        assert_eq!(p.to_string(), "#1 > 100");
    }
}

//! Schema-validated expression trees.
//!
//! An [`ExprTree`] is the paper's "expression tree" (§2.1): leaves are
//! database relations, internal nodes are operators. Trees are immutable
//! and `Arc`-shared — the same subtree may appear under several parents
//! (the paper notes trees with common subexpressions are really DAGs).
//!
//! Construction goes through validating builders that compute each node's
//! output [`Schema`] once, so downstream layers (executor, memo, cost)
//! never re-derive or re-check schemas.

use std::fmt;
use std::sync::Arc;

use spacetime_storage::{Catalog, Column, DataType, Schema, StorageError, StorageResult};

use crate::ops::{AggExpr, AggFunc, JoinCondition, OpKind};
use crate::scalar::ScalarExpr;

/// A shared expression tree.
pub type ExprTree = Arc<ExprNode>;

/// Compute (and validate) the output schema of a non-leaf operator from
/// its children's schemas. `Scan` is excluded — its schema comes from the
/// catalog. This is the single source of truth used by the tree builders
/// and by the memo when rules synthesize new operation nodes.
pub fn derive_schema(op: &OpKind, children: &[&Schema]) -> StorageResult<Schema> {
    match op {
        OpKind::Scan { table } => Err(StorageError::SchemaMismatch {
            detail: format!("schema of scan `{table}` requires the catalog"),
        }),
        OpKind::Select { predicate } => {
            let child = children[0];
            let dt = predicate.dtype(child)?;
            if dt != DataType::Bool {
                return Err(StorageError::TypeError(format!(
                    "selection predicate has type {dt}, expected BOOLEAN"
                )));
            }
            Ok(child.clone())
        }
        OpKind::Project { exprs } => {
            let child = children[0];
            let mut cols = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let dtype = e.dtype(child)?;
                let col = match e {
                    ScalarExpr::Col(i) => {
                        let src = child.column(*i).expect("dtype checked range");
                        Column {
                            qualifier: src.qualifier.clone(),
                            name: name.clone(),
                            dtype,
                        }
                    }
                    _ => Column::bare(name.clone(), dtype),
                };
                cols.push(col);
            }
            Ok(Schema::new(cols))
        }
        OpKind::Join { condition } => {
            let (left, right) = (children[0], children[1]);
            for &(l, r) in &condition.equi {
                if l >= left.arity() {
                    return Err(StorageError::SchemaMismatch {
                        detail: format!("join: left column {l} out of range"),
                    });
                }
                if r >= right.arity() {
                    return Err(StorageError::SchemaMismatch {
                        detail: format!("join: right column {r} out of range"),
                    });
                }
            }
            let schema = left.concat(right);
            if let Some(res) = &condition.residual {
                let dt = res.dtype(&schema)?;
                if dt != DataType::Bool {
                    return Err(StorageError::TypeError(format!(
                        "join residual has type {dt}, expected BOOLEAN"
                    )));
                }
            }
            Ok(schema)
        }
        OpKind::Aggregate { group_by, aggs } => {
            let child = children[0];
            let mut cols = Vec::with_capacity(group_by.len() + aggs.len());
            for &g in group_by {
                let col = child
                    .column(g)
                    .ok_or_else(|| StorageError::SchemaMismatch {
                        detail: format!("group-by position {g} out of range"),
                    })?;
                cols.push(col.clone());
            }
            for a in aggs {
                let dtype = ExprNode::agg_dtype(a, child)?;
                cols.push(Column::bare(a.name.clone(), dtype));
            }
            Ok(Schema::new(cols))
        }
        OpKind::Distinct => Ok(children[0].clone()),
    }
}

/// One node of an expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprNode {
    /// The operator at this node.
    pub op: OpKind,
    /// Children (0 for scans, 1 for unary ops, 2 for joins).
    pub children: Vec<ExprTree>,
    /// The node's output schema (computed at construction).
    pub schema: Schema,
}

impl ExprNode {
    /// Leaf: scan a catalog table. The output schema is the table's schema.
    pub fn scan(catalog: &Catalog, table: &str) -> StorageResult<ExprTree> {
        let t = catalog.table(table)?;
        Ok(Arc::new(ExprNode {
            op: OpKind::Scan {
                table: table.to_string(),
            },
            children: vec![],
            schema: t.schema().clone(),
        }))
    }

    /// Build a non-leaf node over children, deriving and validating the
    /// output schema.
    pub fn build(op: OpKind, children: Vec<ExprTree>) -> StorageResult<ExprTree> {
        let child_schemas: Vec<&Schema> = children.iter().map(|c| &c.schema).collect();
        let schema = derive_schema(&op, &child_schemas)?;
        Ok(Arc::new(ExprNode {
            op,
            children,
            schema,
        }))
    }

    /// Filter `child` by `predicate` (must be boolean over the child
    /// schema).
    pub fn select(child: ExprTree, predicate: ScalarExpr) -> StorageResult<ExprTree> {
        Self::build(OpKind::Select { predicate }, vec![child])
    }

    /// Generalized projection of `child` onto `(expr, name)` outputs.
    pub fn project(child: ExprTree, exprs: Vec<(ScalarExpr, String)>) -> StorageResult<ExprTree> {
        Self::build(OpKind::Project { exprs }, vec![child])
    }

    /// Projection onto existing columns by position (no computation, names
    /// preserved).
    pub fn project_cols(child: ExprTree, positions: &[usize]) -> StorageResult<ExprTree> {
        let exprs = positions
            .iter()
            .map(|&p| {
                let col = child
                    .schema
                    .column(p)
                    .ok_or_else(|| StorageError::SchemaMismatch {
                        detail: format!("projection position {p} out of range"),
                    })?;
                Ok((ScalarExpr::col(p), col.name.clone()))
            })
            .collect::<StorageResult<Vec<_>>>()?;
        Self::project(child, exprs)
    }

    /// Equi-join `left` and `right`. Column positions in `condition.equi`
    /// are relative to each input; the residual (if any) is over the
    /// concatenated schema. Output schema = `left ++ right`.
    pub fn join(
        left: ExprTree,
        right: ExprTree,
        condition: JoinCondition,
    ) -> StorageResult<ExprTree> {
        Self::build(OpKind::Join { condition }, vec![left, right])
    }

    /// Natural-style equi-join by column *names* (resolved on both sides).
    pub fn join_on(
        left: ExprTree,
        right: ExprTree,
        pairs: &[(&str, &str)],
    ) -> StorageResult<ExprTree> {
        let equi = pairs
            .iter()
            .map(|(l, r)| {
                Ok((
                    left.schema.resolve_dotted(l)?,
                    right.schema.resolve_dotted(r)?,
                ))
            })
            .collect::<StorageResult<Vec<_>>>()?;
        Self::join(left, right, JoinCondition::on(equi))
    }

    /// Group `child` by `group_by` columns and compute `aggs`.
    /// Output schema: the group columns in the given order, then one column
    /// per aggregate.
    pub fn aggregate(
        child: ExprTree,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
    ) -> StorageResult<ExprTree> {
        Self::build(OpKind::Aggregate { group_by, aggs }, vec![child])
    }

    /// Output type of one aggregate.
    pub fn agg_dtype(a: &AggExpr, input: &Schema) -> StorageResult<DataType> {
        Ok(match (a.func, &a.arg) {
            (AggFunc::Count, _) => DataType::Int,
            (AggFunc::Avg, Some(arg)) => {
                arg.dtype(input)?; // validate
                DataType::Double
            }
            (AggFunc::Sum | AggFunc::Min | AggFunc::Max, Some(arg)) => {
                let dt = arg.dtype(input)?;
                if a.func == AggFunc::Sum && !matches!(dt, DataType::Int | DataType::Double) {
                    return Err(StorageError::TypeError(format!(
                        "SUM over non-numeric type {dt}"
                    )));
                }
                dt
            }
            (f, None) => {
                return Err(StorageError::TypeError(format!(
                    "{} requires an argument",
                    f.name()
                )))
            }
        })
    }

    /// Duplicate elimination.
    pub fn distinct(child: ExprTree) -> StorageResult<ExprTree> {
        Self::build(OpKind::Distinct, vec![child])
    }

    /// The table names of all scan leaves, left to right (with repeats).
    pub fn leaf_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let OpKind::Scan { table } = &self.op {
            out.push(table);
        }
        for c in &self.children {
            c.collect_leaves(out);
        }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Pretty multi-line rendering, one node per line, children indented —
    /// the format used to print the paper's Figure 1/3/5 trees.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let inputs: Vec<&Schema> = self.children.iter().map(|c| &c.schema).collect();
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.op.describe(&inputs));
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

impl fmt::Display for ExprNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::CmpOp;
    use spacetime_storage::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat
    }

    /// Build the paper's Figure 1 (right) tree:
    /// Select(SumSal > Budget)(Aggregate(SUM Salary BY DName, Budget)(Emp ⋈ Dept)).
    fn problem_dept(cat: &Catalog) -> ExprTree {
        let emp = ExprNode::scan(cat, "Emp").unwrap();
        let dept = ExprNode::scan(cat, "Dept").unwrap();
        let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let agg = ExprNode::aggregate(
            join.clone(),
            vec![
                join.schema.resolve_dotted("Dept.DName").unwrap(),
                join.schema.resolve_dotted("Budget").unwrap(),
            ],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::col(join.schema.resolve_dotted("Salary").unwrap()),
                "SalSum",
            )],
        )
        .unwrap();
        ExprNode::select(
            agg.clone(),
            ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(agg.schema.resolve_dotted("SalSum").unwrap()),
                ScalarExpr::col(agg.schema.resolve_dotted("Budget").unwrap()),
            ),
        )
        .unwrap()
    }

    #[test]
    fn schemas_propagate() {
        let cat = catalog();
        let v = problem_dept(&cat);
        assert_eq!(v.schema.arity(), 3);
        assert_eq!(v.schema.column(0).unwrap().qualified_name(), "Dept.DName");
        assert_eq!(v.schema.column(2).unwrap().name, "SalSum");
        assert_eq!(v.schema.column(2).unwrap().dtype, DataType::Int);
        assert_eq!(v.leaf_tables(), vec!["Emp", "Dept"]);
        assert_eq!(v.node_count(), 5);
    }

    #[test]
    fn select_requires_boolean() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        assert!(ExprNode::select(emp, ScalarExpr::col(2)).is_err());
    }

    #[test]
    fn join_validates_positions() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        assert!(
            ExprNode::join(emp.clone(), dept.clone(), JoinCondition::on(vec![(7, 0)])).is_err()
        );
        assert!(ExprNode::join(emp, dept, JoinCondition::on(vec![(1, 9)])).is_err());
    }

    #[test]
    fn aggregate_schema_and_types() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum"),
                AggExpr::count_star("N"),
                AggExpr::new(AggFunc::Avg, ScalarExpr::col(2), "AvgSal"),
            ],
        )
        .unwrap();
        assert_eq!(agg.schema.arity(), 4);
        assert_eq!(agg.schema.column(1).unwrap().dtype, DataType::Int);
        assert_eq!(agg.schema.column(3).unwrap().dtype, DataType::Double);
    }

    #[test]
    fn sum_over_string_rejected() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        assert!(ExprNode::aggregate(
            emp,
            vec![],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(0), "S")]
        )
        .is_err());
    }

    #[test]
    fn project_tracks_qualifiers() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let p = ExprNode::project(
            emp,
            vec![
                (ScalarExpr::col(1), "DName".into()),
                (
                    ScalarExpr::bin(
                        crate::scalar::BinOp::Mul,
                        ScalarExpr::col(2),
                        ScalarExpr::lit(2),
                    ),
                    "DoubleSalary".into(),
                ),
            ],
        )
        .unwrap();
        assert_eq!(
            p.schema.column(0).unwrap().qualifier.as_deref(),
            Some("Emp")
        );
        assert_eq!(p.schema.column(1).unwrap().qualifier, None);
    }

    #[test]
    fn render_matches_figure_style() {
        let cat = catalog();
        let v = problem_dept(&cat);
        let text = v.render();
        assert!(text.contains("Select (SalSum > Dept.Budget)"), "{text}");
        assert!(
            text.contains("Aggregate (SUM(Emp.Salary) BY Dept.DName, Dept.Budget)"),
            "{text}"
        );
        assert!(text.contains("Join (Emp.DName = Dept.DName)"), "{text}");
    }

    #[test]
    fn unknown_scan_errors() {
        let cat = catalog();
        assert!(ExprNode::scan(&cat, "Nope").is_err());
    }
}

//! The executor: evaluate an expression tree to a [`Bag`], charging page
//! I/Os to an [`IoMeter`] per the paper's physical model.
//!
//! The executor performs lightweight *access-path selection*, because the
//! paper's cost arithmetic depends on it: a query like "find the Emp tuples
//! of one department" must run as an index probe (1 index page + k tuple
//! pages), not a scan. Concretely:
//!
//! * `Select` over a `Scan` with literal-equality conjuncts covering an
//!   index key probes the index and filters any residual conjuncts.
//! * `Join` probes an indexed side when the other side is (or is expected
//!   to be) small; otherwise it hash-joins full scans.
//!
//! SQL semantics notes: predicates use three-valued logic (unknown rows are
//! filtered out), equi-joins never match on NULL keys, and aggregates
//! ignore NULL arguments.

use std::collections::HashMap;

use spacetime_storage::{Bag, Catalog, IoMeter, StorageError, StorageResult, Table, Tuple, Value};

use crate::ops::{AggExpr, AggFunc, JoinCondition, OpKind};
use crate::scalar::{CmpOp, ScalarExpr};
use crate::tree::ExprNode;

/// Evaluate `node` against `catalog`, charging I/O to `io`.
pub fn eval(node: &ExprNode, catalog: &Catalog, io: &mut IoMeter) -> StorageResult<Bag> {
    match &node.op {
        OpKind::Scan { table } => {
            let t = catalog.table(table)?;
            Ok(t.relation.scan(io).clone())
        }
        OpKind::Select { predicate } => eval_select(node, predicate, catalog, io),
        OpKind::Project { exprs } => {
            let input = eval(&node.children[0], catalog, io)?;
            project_bag(&input, exprs)
        }
        OpKind::Join { condition } => eval_join(node, condition, catalog, io),
        OpKind::Aggregate { group_by, aggs } => {
            let input = eval(&node.children[0], catalog, io)?;
            aggregate_bag(&input, group_by, aggs)
        }
        OpKind::Distinct => {
            let input = eval(&node.children[0], catalog, io)?;
            Ok(input.iter().map(|(t, _)| (t.clone(), 1)).collect())
        }
    }
}

/// Evaluate without counting I/O (verification oracles, initial loads).
pub fn eval_uncharged(node: &ExprNode, catalog: &Catalog) -> StorageResult<Bag> {
    let mut io = IoMeter::new();
    eval(node, catalog, &mut io)
}

/// Apply a projection to every tuple of a bag.
pub fn project_bag(input: &Bag, exprs: &[(ScalarExpr, String)]) -> StorageResult<Bag> {
    let mut out = Bag::new();
    for (t, c) in input.iter() {
        let projected: Tuple = exprs
            .iter()
            .map(|(e, _)| e.eval(t))
            .collect::<StorageResult<Vec<Value>>>()?
            .into();
        out.insert(projected, c);
    }
    Ok(out)
}

/// Filter a bag by a predicate (three-valued; unknown rows dropped).
pub fn filter_bag(input: &Bag, predicate: &ScalarExpr) -> StorageResult<Bag> {
    let mut out = Bag::new();
    for (t, c) in input.iter() {
        if predicate.eval_predicate(t)? {
            out.insert(t.clone(), c);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Select
// ---------------------------------------------------------------------

fn eval_select(
    node: &ExprNode,
    predicate: &ScalarExpr,
    catalog: &Catalog,
    io: &mut IoMeter,
) -> StorageResult<Bag> {
    // Access path: Select(Scan) with literal equalities covering an index.
    if let OpKind::Scan { table } = &node.children[0].op {
        let t = catalog.table(table)?;
        let (bound, residual) = split_eq_literals(predicate);
        if !bound.is_empty() {
            if let Some((index_id, key)) = covering_index(t, &bound) {
                let hits = t.relation.lookup(index_id, &key, io);
                return match residual {
                    Some(res) => filter_bag(&hits, &res),
                    None => Ok(hits),
                };
            }
        }
    }
    let input = eval(&node.children[0], catalog, io)?;
    filter_bag(&input, predicate)
}

/// Split a predicate into literal-equality bindings (`col = literal`) and
/// the residual conjuncts. Returns the residual re-assembled as a
/// predicate, or `None` when everything was consumed.
fn split_eq_literals(pred: &ScalarExpr) -> (HashMap<usize, Value>, Option<ScalarExpr>) {
    let conjuncts: Vec<&ScalarExpr> = match pred {
        ScalarExpr::And(parts) => parts.iter().collect(),
        other => vec![other],
    };
    let mut bound = HashMap::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        match c {
            ScalarExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } => match (&**left, &**right) {
                (ScalarExpr::Col(i), ScalarExpr::Lit(v))
                | (ScalarExpr::Lit(v), ScalarExpr::Col(i))
                    if !v.is_null() && !bound.contains_key(i) =>
                {
                    bound.insert(*i, v.clone());
                }
                _ => residual.push(c.clone()),
            },
            _ => residual.push(c.clone()),
        }
    }
    let residual = match residual.len() {
        0 => None,
        1 => Some(residual.pop().expect("len checked")),
        _ => Some(ScalarExpr::And(residual)),
    };
    (bound, residual)
}

/// Find an index of `t` whose key columns are all bound, and build the
/// probe key in index order. Unused bindings are fine (they stay in the
/// residual, which `split_eq_literals` preserved separately — we therefore
/// only use an index when it consumes *all* bindings, keeping filtering
/// exact).
fn covering_index(t: &Table, bound: &HashMap<usize, Value>) -> Option<(usize, Vec<Value>)> {
    for (index_id, cols) in t.relation.index_defs().into_iter().enumerate() {
        if cols.len() == bound.len() && cols.iter().all(|c| bound.contains_key(c)) {
            let key = cols.iter().map(|c| bound[c].clone()).collect();
            return Some((index_id, key));
        }
    }
    // Fall back to an index covered by a subset of the bindings: probe it
    // and let the caller filter the rest. Prefer the longest such index.
    let mut best: Option<(usize, Vec<usize>)> = None;
    for (index_id, cols) in t.relation.index_defs().into_iter().enumerate() {
        if cols.iter().all(|c| bound.contains_key(c))
            && best.as_ref().is_none_or(|(_, b)| cols.len() > b.len())
        {
            best = Some((index_id, cols));
        }
    }
    best.map(|(id, cols)| {
        let key = cols.iter().map(|c| bound[c].clone()).collect();
        (id, key)
    })
}

// ---------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------

/// A probe-able join input: a scan (possibly filtered) with a hash index
/// on exactly the join columns.
struct ProbeSide {
    table: String,
    index_id: usize,
    /// Probe-key order: for each equi pair (in order), where that column
    /// sits in the index key.
    key_order: Vec<usize>,
    filter: Option<ScalarExpr>,
}

fn probe_side(node: &ExprNode, join_cols: &[usize], catalog: &Catalog) -> Option<ProbeSide> {
    let (scan_table, filter) = match &node.op {
        OpKind::Scan { table } => (table, None),
        OpKind::Select { predicate } => match &node.children[0].op {
            OpKind::Scan { table } => (table, Some(predicate.clone())),
            _ => return None,
        },
        _ => return None,
    };
    let t = catalog.table(scan_table).ok()?;
    for (index_id, cols) in t.relation.index_defs().into_iter().enumerate() {
        if cols.len() == join_cols.len()
            && join_cols.iter().all(|c| cols.contains(c))
            && cols.iter().all(|c| join_cols.contains(c))
        {
            // key_order[i] = position in the index key of join_cols[i].
            let key_order = join_cols
                .iter()
                .map(|jc| cols.iter().position(|c| c == jc).expect("checked"))
                .collect();
            return Some(ProbeSide {
                table: scan_table.clone(),
                index_id,
                key_order,
                filter,
            });
        }
    }
    None
}

fn eval_join(
    node: &ExprNode,
    condition: &JoinCondition,
    catalog: &Catalog,
    io: &mut IoMeter,
) -> StorageResult<Bag> {
    let left_node = &node.children[0];
    let right_node = &node.children[1];
    let lcols = condition.left_cols();
    let rcols = condition.right_cols();

    // Estimated full-access cost of a side, when it is a (filtered) scan.
    let scan_pages = |n: &ExprNode| -> Option<u64> {
        match &n.op {
            OpKind::Scan { table } => catalog.table(table).ok().map(|t| t.relation.pages()),
            OpKind::Select { .. } => match &n.children[0].op {
                OpKind::Scan { table } => catalog.table(table).ok().map(|t| t.relation.pages()),
                _ => None,
            },
            _ => None,
        }
    };

    // Strategy: evaluate the left side, and probe the right if that is
    // expected to beat scanning it (the delta-query case: tiny outer, big
    // indexed inner). Otherwise hash-join. The symmetric case (probe the
    // left) is handled by evaluating right first when left is the
    // probe-able big side.
    let right_probe = probe_side(right_node, &rcols, catalog);
    let left_probe = probe_side(left_node, &lcols, catalog);

    // Decide probe direction without evaluating the big side.
    if right_probe.is_some() || left_probe.is_some() {
        // Prefer probing the side with the larger scan footprint.
        let lp = scan_pages(left_node).unwrap_or(u64::MAX);
        let rp = scan_pages(right_node).unwrap_or(u64::MAX);
        if let Some(probe) = right_probe {
            let outer = eval(left_node, catalog, io)?;
            if outer.len() <= rp {
                return probe_join(&outer, &lcols, &probe, condition, false, catalog, io);
            }
            // Outer too big: fall through to hash join, reusing `outer`.
            let inner = eval(right_node, catalog, io)?;
            return hash_join(&outer, &inner, condition, io);
        }
        if let Some(probe) = left_probe {
            let outer = eval(right_node, catalog, io)?;
            if outer.len() <= lp {
                return probe_join(&outer, &rcols, &probe, condition, true, catalog, io);
            }
            let inner = eval(left_node, catalog, io)?;
            return hash_join(&inner, &outer, condition, io);
        }
    }

    let left = eval(left_node, catalog, io)?;
    let right = eval(right_node, catalog, io)?;
    hash_join(&left, &right, condition, io)
}

/// Index-nested-loop join: for each outer tuple, probe the indexed side.
/// `flipped` means the outer side is the join's *right* input.
fn probe_join(
    outer: &Bag,
    outer_cols: &[usize],
    probe: &ProbeSide,
    condition: &JoinCondition,
    flipped: bool,
    catalog: &Catalog,
    io: &mut IoMeter,
) -> StorageResult<Bag> {
    let t = catalog.table(&probe.table)?;
    let mut out = Bag::new();
    for (ot, oc) in outer.iter() {
        // Build the probe key in index order; NULL keys never match.
        let mut key = vec![Value::Null; outer_cols.len()];
        let mut has_null = false;
        for (i, &col) in outer_cols.iter().enumerate() {
            let v = ot.get(col).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                has_null = true;
                break;
            }
            key[probe.key_order[i]] = v;
        }
        if has_null {
            continue;
        }
        let hits = t.relation.lookup(probe.index_id, &key, io);
        for (it, ic) in hits.iter() {
            if let Some(f) = &probe.filter {
                if !f.eval_predicate(it)? {
                    continue;
                }
            }
            let joined = if flipped {
                it.concat(ot)
            } else {
                ot.concat(it)
            };
            if let Some(res) = &condition.residual {
                if !res.eval_predicate(&joined)? {
                    continue;
                }
            }
            out.insert(joined, oc * ic);
        }
    }
    Ok(out)
}

/// Hash join over two evaluated bags.
fn hash_join(
    left: &Bag,
    right: &Bag,
    condition: &JoinCondition,
    _io: &mut IoMeter,
) -> StorageResult<Bag> {
    join_bags(left, right, condition)
}

/// Pure in-memory bag join (also used by the delta rules, which join delta
/// bags that are already in memory and charge their own lookup costs).
pub fn join_bags(left: &Bag, right: &Bag, condition: &JoinCondition) -> StorageResult<Bag> {
    let lcols = condition.left_cols();
    let rcols = condition.right_cols();
    let mut table: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> = HashMap::new();
    'right: for (rt, rc) in right.iter() {
        let mut key = Vec::with_capacity(rcols.len());
        for &c in &rcols {
            let v = rt.get(c).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                continue 'right; // NULL never joins
            }
            key.push(v);
        }
        table.entry(key).or_default().push((rt, rc));
    }
    let mut out = Bag::new();
    'left: for (lt, lc) in left.iter() {
        let mut key = Vec::with_capacity(lcols.len());
        for &c in &lcols {
            let v = lt.get(c).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                continue 'left;
            }
            key.push(v);
        }
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for (rt, rc) in matches {
            let joined = lt.concat(rt);
            if let Some(res) = &condition.residual {
                if !res.eval_predicate(&joined)? {
                    continue;
                }
            }
            out.insert(joined, lc * rc);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

/// One aggregate's accumulator.
#[derive(Debug, Clone)]
enum AggAccum {
    Count(u64),
    Sum { sum: Option<Value> },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: Option<Value>, n: u64 },
}

impl AggAccum {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggAccum::Count(0),
            AggFunc::Sum => AggAccum::Sum { sum: None },
            AggFunc::Min => AggAccum::Min(None),
            AggFunc::Max => AggAccum::Max(None),
            AggFunc::Avg => AggAccum::Avg { sum: None, n: 0 },
        }
    }

    /// Fold in `mult` occurrences of `v` (`None` = COUNT(*) with no arg).
    fn update(&mut self, v: Option<&Value>, mult: u64) -> StorageResult<()> {
        match self {
            AggAccum::Count(n) => {
                // COUNT(*) counts rows; COUNT(expr) counts non-NULLs.
                match v {
                    Some(val) if val.is_null() => {}
                    _ => *n += mult,
                }
            }
            AggAccum::Sum { sum } => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    let contribution = val.mul(&Value::Int(mult as i64))?;
                    *sum = Some(match sum.take() {
                        Some(s) => s.add(&contribution)?,
                        None => contribution,
                    });
                }
            }
            AggAccum::Min(m) => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    if m.as_ref().is_none_or(|cur| val < cur) {
                        *m = Some(val.clone());
                    }
                }
            }
            AggAccum::Max(m) => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    if m.as_ref().is_none_or(|cur| val > cur) {
                        *m = Some(val.clone());
                    }
                }
            }
            AggAccum::Avg { sum, n } => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    let contribution = val.mul(&Value::Int(mult as i64))?;
                    *sum = Some(match sum.take() {
                        Some(s) => s.add(&contribution)?,
                        None => contribution,
                    });
                    *n += mult;
                }
            }
        }
        Ok(())
    }

    fn finalize(self) -> StorageResult<Value> {
        Ok(match self {
            AggAccum::Count(n) => Value::Int(n as i64),
            AggAccum::Sum { sum } => sum.unwrap_or(Value::Null),
            AggAccum::Min(m) => m.unwrap_or(Value::Null),
            AggAccum::Max(m) => m.unwrap_or(Value::Null),
            AggAccum::Avg { sum, n } => match sum {
                Some(s) => {
                    let total = s
                        .as_f64()
                        .ok_or_else(|| StorageError::TypeError("AVG over non-numeric".into()))?;
                    Value::Double(total / n as f64)
                }
                None => Value::Null,
            },
        })
    }
}

/// Group a bag and compute aggregates. With an empty `group_by`, produces
/// exactly one output row even over empty input (SQL global aggregates).
pub fn aggregate_bag(input: &Bag, group_by: &[usize], aggs: &[AggExpr]) -> StorageResult<Bag> {
    let mut groups: HashMap<Vec<Value>, Vec<AggAccum>> = HashMap::new();
    if group_by.is_empty() {
        groups.insert(vec![], aggs.iter().map(|a| AggAccum::new(a.func)).collect());
    }
    for (t, c) in input.iter() {
        let key: Vec<Value> = group_by
            .iter()
            .map(|&g| t.get(g).cloned().unwrap_or(Value::Null))
            .collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggAccum::new(a.func)).collect());
        for (state, agg) in states.iter_mut().zip(aggs) {
            let arg = agg.arg.as_ref().map(|e| e.eval(t)).transpose()?;
            state.update(arg.as_ref(), c)?;
        }
    }
    let mut out = Bag::new();
    for (key, states) in groups {
        let mut row = key;
        for s in states {
            row.push(s.finalize()?);
        }
        out.insert(Tuple::new(row), 1);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::JoinCondition;
    use crate::scalar::{BinOp, CmpOp};
    use crate::tree::ExprNode;
    use spacetime_storage::{tuple, DataType, Schema};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.create_index("Emp", &["DName"]).unwrap();
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        let mut io = IoMeter::new();
        for (e, d, s) in [
            ("alice", "Sales", 100),
            ("bob", "Sales", 80),
            ("carol", "Eng", 120),
            ("dan", "Eng", 60),
            ("eve", "HR", 90),
        ] {
            cat.table_mut("Emp")
                .unwrap()
                .relation
                .insert(tuple![e, d, s], 1, &mut io)
                .unwrap();
        }
        for (d, m, b) in [
            ("Sales", "mary", 150),
            ("Eng", "nick", 200),
            ("HR", "olga", 50),
        ] {
            cat.table_mut("Dept")
                .unwrap()
                .relation
                .insert(tuple![d, m, b], 1, &mut io)
                .unwrap();
        }
        cat
    }

    #[test]
    fn indexed_select_charges_probe_cost() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let sel = ExprNode::select(emp, ScalarExpr::col_eq_lit(1, "Sales")).unwrap();
        let mut io = IoMeter::new();
        let result = eval(&sel, &cat, &mut io).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(io.total(), 3, "1 index page + 2 tuple pages, not a scan");
    }

    #[test]
    fn select_with_residual_filters_after_probe() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let pred = ScalarExpr::col_eq_lit(1, "Sales").and(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(2),
            ScalarExpr::lit(90),
        ));
        let sel = ExprNode::select(emp, pred).unwrap();
        let mut io = IoMeter::new();
        let result = eval(&sel, &cat, &mut io).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(io.total(), 3, "probe still fetches both Sales tuples");
    }

    #[test]
    fn unindexed_select_scans() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let sel = ExprNode::select(
            emp,
            ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(2), ScalarExpr::lit(100)),
        )
        .unwrap();
        let mut io = IoMeter::new();
        let result = eval(&sel, &cat, &mut io).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(io.total(), 1, "5 tuples at 10/page = 1 page scanned");
    }

    #[test]
    fn join_matches_nested_loop_reference() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let j = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let result = eval_uncharged(&j, &cat).unwrap();
        assert_eq!(result.len(), 5, "every employee matches exactly one dept");
        // Spot-check one joined row.
        assert!(result.contains(&tuple!["eve", "HR", 90, "HR", "olga", 50]));
    }

    #[test]
    fn join_multiplicities_multiply() {
        let a: Bag = [(tuple!["k", 1], 2)].into_iter().collect();
        let b: Bag = [(tuple!["k", 9], 3)].into_iter().collect();
        let j = join_bags(&a, &b, &JoinCondition::on(vec![(0, 0)])).unwrap();
        assert_eq!(j.count(&tuple!["k", 1, "k", 9]), 6);
    }

    #[test]
    fn null_keys_never_join() {
        let a: Bag = [(tuple![Value::Null, 1], 1)].into_iter().collect();
        let b: Bag = [(tuple![Value::Null, 2], 1)].into_iter().collect();
        let j = join_bags(&a, &b, &JoinCondition::on(vec![(0, 0)])).unwrap();
        assert!(j.is_empty());
    }

    #[test]
    fn join_residual_applies() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let cond = JoinCondition {
            equi: vec![(1, 0)],
            residual: Some(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::col(5),
            )),
        };
        let j = ExprNode::join(emp, dept, cond).unwrap();
        let result = eval_uncharged(&j, &cat).unwrap();
        // Salary > Budget: only eve (90 > 50).
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn small_outer_probes_indexed_inner() {
        let cat = catalog();
        // Select one Dept tuple, then join against indexed Emp: should
        // probe, charging 2 (Dept probe is impossible — key lookup on Dept
        // by name) … we build: Select(Dept.DName='Sales') ⋈ Emp.
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let one = ExprNode::select(dept, ScalarExpr::col_eq_lit(0, "Sales")).unwrap();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let j = ExprNode::join_on(one, emp, &[("Dept.DName", "Emp.DName")]).unwrap();
        let mut io = IoMeter::new();
        let result = eval(&j, &cat, &mut io).unwrap();
        assert_eq!(result.len(), 2);
        // 2 (Dept key lookup: index+1 tuple) + 3 (Emp probe: index+2 tuples).
        assert_eq!(io.total(), 5);
    }

    #[test]
    fn aggregate_sums_groups() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum"),
                AggExpr::count_star("N"),
            ],
        )
        .unwrap();
        let result = eval_uncharged(&agg, &cat).unwrap();
        assert_eq!(result.len(), 3);
        assert!(result.contains(&tuple!["Sales", 180, 2]));
        assert!(result.contains(&tuple!["Eng", 180, 2]));
        assert!(result.contains(&tuple!["HR", 90, 1]));
    }

    #[test]
    fn aggregate_respects_multiplicity() {
        let input: Bag = [(tuple!["g", 5], 3)].into_iter().collect();
        let out = aggregate_bag(
            &input,
            &[0],
            &[
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s"),
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Avg, ScalarExpr::col(1), "a"),
            ],
        )
        .unwrap();
        assert!(out.contains(&tuple!["g", 15, 3, 5.0]));
    }

    #[test]
    fn aggregate_ignores_nulls() {
        let input: Bag = [(tuple!["g", Value::Null], 2), (tuple!["g", 10], 1)]
            .into_iter()
            .collect();
        let out = aggregate_bag(
            &input,
            &[0],
            &[
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s"),
                AggExpr::new(AggFunc::Count, ScalarExpr::col(1), "c"),
                AggExpr::count_star("n"),
            ],
        )
        .unwrap();
        assert!(out.contains(&tuple!["g", 10, 1, 3]));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let out = aggregate_bag(
            &Bag::new(),
            &[],
            &[
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(0), "s"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![0, Value::Null]));
    }

    #[test]
    fn min_max_aggregates() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let agg = ExprNode::aggregate(
            emp,
            vec![1],
            vec![
                AggExpr::new(AggFunc::Min, ScalarExpr::col(2), "lo"),
                AggExpr::new(AggFunc::Max, ScalarExpr::col(2), "hi"),
            ],
        )
        .unwrap();
        let result = eval_uncharged(&agg, &cat).unwrap();
        assert!(result.contains(&tuple!["Eng", 60, 120]));
    }

    #[test]
    fn projection_computes_expressions() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let p = ExprNode::project(
            emp,
            vec![(
                ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(2), ScalarExpr::lit(2)),
                "Dbl".into(),
            )],
        )
        .unwrap();
        let result = eval_uncharged(&p, &cat).unwrap();
        assert!(result.contains(&tuple![200]));
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn distinct_collapses_duplicates() {
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let p = ExprNode::project_cols(emp, &[1]).unwrap();
        let d = ExprNode::distinct(p).unwrap();
        let result = eval_uncharged(&d, &cat).unwrap();
        assert_eq!(result.len(), 3);
        assert_eq!(result.count(&tuple!["Sales"]), 1);
    }

    #[test]
    fn figure1_tree_evaluates_problem_dept() {
        // The motivating view: departments whose salary total exceeds
        // budget. Sales: 180 > 150 ✓; Eng: 180 < 200 ✗; HR: 90 > 50 ✓.
        let cat = catalog();
        let emp = ExprNode::scan(&cat, "Emp").unwrap();
        let dept = ExprNode::scan(&cat, "Dept").unwrap();
        let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let agg = ExprNode::aggregate(
            join,
            vec![3, 5],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
        )
        .unwrap();
        let sel = ExprNode::select(
            agg,
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::col(1)),
        )
        .unwrap();
        let result = eval_uncharged(&sel, &cat).unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.contains(&tuple!["Sales", 150, 180]));
        assert!(result.contains(&tuple!["HR", 50, 90]));
    }
}

//! Transaction types (§3.2).
//!
//! > *"We assume a set of transaction types T₁, T₂, …, Tₙ that can update
//! > the database, where each transaction type defines the relations that
//! > are updated, the kinds of updates (insertions, deletions,
//! > modifications) to the relations, and the size of the update to each
//! > of the relations. We also assume that each of the transaction types
//! > Tᵢ has an associated weight fᵢ."*

use std::fmt;

/// The kind of update a transaction applies to a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Tuples inserted.
    Insert,
    /// Tuples deleted.
    Delete,
    /// Tuples modified in place (non-key columns).
    Modify,
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateKind::Insert => write!(f, "insert"),
            UpdateKind::Delete => write!(f, "delete"),
            UpdateKind::Modify => write!(f, "modify"),
        }
    }
}

/// One relation's update within a transaction type.
#[derive(Debug, Clone, PartialEq)]
pub struct TableUpdate {
    /// The updated base relation.
    pub table: String,
    /// Insert/delete/modify.
    pub kind: UpdateKind,
    /// Expected number of tuples touched per transaction.
    pub size: f64,
}

/// A transaction type with its workload weight.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionType {
    /// Display name (e.g. the paper's `>Emp`).
    pub name: String,
    /// Updated relations.
    pub updates: Vec<TableUpdate>,
    /// Relative frequency / importance `fᵢ`.
    pub weight: f64,
}

impl TransactionType {
    /// A transaction modifying `size` tuples of one relation.
    pub fn modify(name: impl Into<String>, table: impl Into<String>, size: f64) -> Self {
        Self::single(name, table, UpdateKind::Modify, size)
    }

    /// A transaction inserting `size` tuples into one relation.
    pub fn insert(name: impl Into<String>, table: impl Into<String>, size: f64) -> Self {
        Self::single(name, table, UpdateKind::Insert, size)
    }

    /// A transaction deleting `size` tuples from one relation.
    pub fn delete(name: impl Into<String>, table: impl Into<String>, size: f64) -> Self {
        Self::single(name, table, UpdateKind::Delete, size)
    }

    fn single(
        name: impl Into<String>,
        table: impl Into<String>,
        kind: UpdateKind,
        size: f64,
    ) -> Self {
        TransactionType {
            name: name.into(),
            updates: vec![TableUpdate {
                table: table.into(),
                kind,
                size,
            }],
            weight: 1.0,
        }
    }

    /// Builder: set the weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Builder: add another relation update.
    pub fn and_update(mut self, table: impl Into<String>, kind: UpdateKind, size: f64) -> Self {
        self.updates.push(TableUpdate {
            table: table.into(),
            kind,
            size,
        });
        self
    }

    /// Names of the updated tables.
    pub fn updated_tables(&self) -> Vec<&str> {
        self.updates.iter().map(|u| u.table.as_str()).collect()
    }

    /// The update entry for one table, if any.
    pub fn update_for(&self, table: &str) -> Option<&TableUpdate> {
        self.updates.iter().find(|u| u.table == table)
    }
}

/// The weighted-average combination of per-transaction costs (§3.5):
/// `C(V) = Σᵢ C(V,Tᵢ)·fᵢ / Σᵢ fᵢ`.
pub fn weighted_average(costs_and_weights: &[(f64, f64)]) -> f64 {
    let total_weight: f64 = costs_and_weights.iter().map(|(_, w)| w).sum();
    if total_weight == 0.0 {
        return 0.0;
    }
    costs_and_weights.iter().map(|(c, w)| c * w).sum::<f64>() / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let t = TransactionType::modify(">Emp", "Emp", 1.0)
            .with_weight(3.0)
            .and_update("Dept", UpdateKind::Delete, 2.0);
        assert_eq!(t.updates.len(), 2);
        assert_eq!(t.weight, 3.0);
        assert_eq!(t.updated_tables(), vec!["Emp", "Dept"]);
        assert_eq!(t.update_for("Dept").unwrap().kind, UpdateKind::Delete);
        assert!(t.update_for("Nope").is_none());
    }

    #[test]
    fn paper_headline_average() {
        // Strategy (b): 5 for >Emp, 2 for >Dept, equal weights → 3.5.
        assert_eq!(weighted_average(&[(5.0, 1.0), (2.0, 1.0)]), 3.5);
        // Strategy (a): 13 and 11 → 12.
        assert_eq!(weighted_average(&[(13.0, 1.0), (11.0, 1.0)]), 12.0);
    }

    #[test]
    fn weighted_average_handles_uneven_weights() {
        assert_eq!(weighted_average(&[(10.0, 1.0), (0.0, 3.0)]), 2.5);
        assert_eq!(weighted_average(&[]), 0.0);
    }
}

//! # spacetime-cost
//!
//! Cost estimation for the paper's view-set optimization:
//!
//! * [`model`] — the [`Cost`] type and the *monotonic* [`CostModel`] trait
//!   (§3.4: "our technique and results are applicable for any monotonic
//!   cost model"), plus [`PageIoCostModel`], the §3.6 hash-index page-I/O
//!   model the paper's tables are computed with.
//! * [`txn`] — transaction types: which relations a transaction updates,
//!   the update kind and size, and the type's weight `f_i`.
//! * [`est`] — cardinality, distinct-count and **delta-size** estimation
//!   over memo groups ("We assume that the sizes of the Δs on the inputs
//!   are available … we can then compute the size of the update to the
//!   result", §2.2).
//! * [`query`] — the cost of answering a delta query on an equivalence
//!   node *in the presence of materialized views* (the Chaudhuri et al.
//!   adaptation of §3.4), including the batch (multi-query-optimized)
//!   variant used to cost an update track's query set.
//! * [`shared`] — a sharded query-cost cache shared across the parallel
//!   optimizer's worker threads.

pub mod est;
pub mod model;
pub mod query;
pub mod shared;
pub mod txn;

pub use est::{CostCtx, DeltaEst};
pub use model::{Cost, CostModel, PageIoCostModel};
pub use query::{BatchQuery, Marking};
pub use shared::SharedQueryCache;
pub use txn::{TableUpdate, TransactionType, UpdateKind};

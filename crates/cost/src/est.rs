//! Statistics and delta-size estimation over memo groups.
//!
//! [`CostCtx`] wraps a memo + catalog + cost model and memoizes group
//! cardinalities, per-column distinct counts, candidate keys and delta-size
//! estimates. The formulas are the classic System-R heuristics — the paper
//! is explicit that "our techniques are independent of the exact formulae
//! for computing the size of the Δs, although our examples use specific
//! formulae" (§2.2); these are the specific formulas that reproduce the
//! §3.6 tables.

use std::collections::{BTreeSet, HashMap};

use spacetime_algebra::{derive_keys, Key, OpKind, ScalarExpr};
use spacetime_memo::{GroupId, Memo, OpId};
use spacetime_storage::Catalog;

use crate::model::{Cost, CostModel};
use crate::txn::{TableUpdate, TransactionType, UpdateKind};

/// Estimated delta arriving at a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaEst {
    /// Expected touched tuples.
    pub size: f64,
    /// The dominant update kind at this node.
    pub kind: UpdateKind,
}

impl DeltaEst {
    /// The zero delta.
    pub const NONE: DeltaEst = DeltaEst {
        size: 0.0,
        kind: UpdateKind::Modify,
    };

    /// Whether this node is unaffected.
    pub fn is_zero(&self) -> bool {
        self.size == 0.0
    }
}

/// Estimation context over one explored memo.
pub struct CostCtx<'a> {
    /// The expression DAG.
    pub memo: &'a Memo,
    /// Base-table schemas, keys and statistics.
    pub catalog: &'a Catalog,
    /// The (monotonic) cost model.
    pub model: &'a dyn CostModel,
    card_cache: HashMap<GroupId, f64>,
    distinct_cache: HashMap<(GroupId, usize), f64>,
    key_cache: HashMap<GroupId, Vec<Key>>,
    query_cache: HashMap<(GroupId, Vec<usize>, u64), crate::model::Cost>,
    /// Canonical groups reachable from each canonical group through any op
    /// alternative, memoized: the marking slice a query on that group can
    /// possibly consult (used to narrow shared-cache keys).
    reach_cache: HashMap<GroupId, std::sync::Arc<std::collections::BTreeSet<GroupId>>>,
    shared_queries: Option<crate::shared::SharedQueryCache>,
}

impl<'a> CostCtx<'a> {
    /// Build a context.
    pub fn new(memo: &'a Memo, catalog: &'a Catalog, model: &'a dyn CostModel) -> Self {
        CostCtx {
            memo,
            catalog,
            model,
            card_cache: HashMap::new(),
            distinct_cache: HashMap::new(),
            key_cache: HashMap::new(),
            query_cache: HashMap::new(),
            reach_cache: HashMap::new(),
            shared_queries: None,
        }
    }

    /// Build a context whose query-cost lookups also consult (and feed) a
    /// cache shared across threads. Per-worker caches stay: the local map
    /// answers repeats without touching the shared shards' locks.
    pub fn with_shared_cache(
        memo: &'a Memo,
        catalog: &'a Catalog,
        model: &'a dyn CostModel,
        shared: crate::shared::SharedQueryCache,
    ) -> Self {
        let mut ctx = Self::new(memo, catalog, model);
        ctx.shared_queries = Some(shared);
        ctx
    }

    /// The per-(node, binding, marking) query-cost memo table.
    pub(crate) fn query_cache(
        &mut self,
    ) -> &mut HashMap<(GroupId, Vec<usize>, u64), crate::model::Cost> {
        &mut self.query_cache
    }

    /// The cross-thread query-cost cache, if one was attached.
    pub(crate) fn shared_queries(&self) -> Option<&crate::shared::SharedQueryCache> {
        self.shared_queries.as_ref()
    }

    /// Every canonical group reachable from `g` (inclusive) through the
    /// children of any op alternative — exactly the groups whose marking
    /// membership `query_cost`/`full_eval_cost` on `g` can test. Memoized;
    /// the memo is frozen for this context's lifetime, so the set never
    /// goes stale.
    pub(crate) fn reachable(
        &mut self,
        g: GroupId,
    ) -> std::sync::Arc<std::collections::BTreeSet<GroupId>> {
        let g = self.memo.find(g);
        if let Some(r) = self.reach_cache.get(&g) {
            return r.clone();
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![g];
        while let Some(x) = stack.pop() {
            let x = self.memo.find(x);
            if !seen.insert(x) {
                continue;
            }
            for op in self.memo.group_ops(x) {
                for c in self.memo.op_children(op) {
                    stack.push(self.memo.find(c));
                }
            }
        }
        let r = std::sync::Arc::new(seen);
        self.reach_cache.insert(g, r.clone());
        r
    }

    /// First live, acyclic operation node of a group (estimation uses one
    /// representative alternative — all alternatives compute the same
    /// value, so their statistics agree).
    fn repr_op(&self, g: GroupId, path: &[GroupId]) -> Option<OpId> {
        self.memo
            .group_ops(g)
            .into_iter()
            .find(|&o| self.memo.op_children(o).iter().all(|c| !path.contains(c)))
    }

    // -----------------------------------------------------------------
    // Cardinality
    // -----------------------------------------------------------------

    /// Estimated output cardinality of a group.
    pub fn card(&mut self, g: GroupId) -> f64 {
        let g = self.memo.find(g);
        if let Some(&c) = self.card_cache.get(&g) {
            return c;
        }
        let c = self.card_guarded(g, &mut vec![]);
        self.card_cache.insert(g, c);
        c
    }

    fn card_guarded(&mut self, g: GroupId, path: &mut Vec<GroupId>) -> f64 {
        let g = self.memo.find(g);
        if let Some(&c) = self.card_cache.get(&g) {
            return c;
        }
        path.push(g);
        let result = match self.repr_op(g, path) {
            Some(op) => self.op_card(op, path),
            None => 0.0,
        };
        path.pop();
        result
    }

    fn op_card(&mut self, op: OpId, path: &mut Vec<GroupId>) -> f64 {
        let node = self.memo.op(op).op.clone();
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => self
                .catalog
                .table(&table)
                .map(|t| t.stats.cardinality as f64)
                .unwrap_or(0.0),
            OpKind::Select { predicate } => {
                let child = children[0];
                let input = self.card_guarded(child, path);
                input * self.selectivity(&predicate, child, path)
            }
            OpKind::Project { .. } => self.card_guarded(children[0], path),
            OpKind::Join { condition } => {
                let (l, r) = (children[0], children[1]);
                let cl = self.card_guarded(l, path);
                let cr = self.card_guarded(r, path);
                let mut denom = 1.0;
                for &(lc, rc) in &condition.equi {
                    let dl = self.distinct_guarded(l, lc, path).max(1.0);
                    let dr = self.distinct_guarded(r, rc, path).max(1.0);
                    denom *= dl.max(dr);
                }
                let mut card = cl * cr / denom;
                if condition.residual.is_some() {
                    card /= 3.0;
                }
                card
            }
            OpKind::Aggregate { group_by, .. } => {
                if group_by.is_empty() {
                    return 1.0;
                }
                let child = children[0];
                let input = self.card_guarded(child, path);
                // FD-aware: grouping Emp ⋈ Dept by (DName, Budget) yields
                // one group per department, not |DName| × |Budget|.
                let cols: BTreeSet<usize> = group_by.iter().copied().collect();
                let groups = self.combined_distinct_guarded(child, &cols, path);
                groups.min(input)
            }
            OpKind::Distinct => {
                let child = children[0];
                let input = self.card_guarded(child, path);
                let cols: BTreeSet<usize> = (0..self.memo.schema(child).arity()).collect();
                let distinct = self.combined_distinct_guarded(child, &cols, path);
                distinct.min(input)
            }
        }
    }

    fn selectivity(
        &mut self,
        predicate: &ScalarExpr,
        child: GroupId,
        path: &mut Vec<GroupId>,
    ) -> f64 {
        match predicate {
            ScalarExpr::And(parts) => parts
                .iter()
                .map(|p| self.selectivity(p, child, path))
                .product(),
            ScalarExpr::Or(parts) => parts
                .iter()
                .map(|p| self.selectivity(p, child, path))
                .fold(0.0, |a, b| (a + b).min(1.0)),
            ScalarExpr::Not(inner) => 1.0 - self.selectivity(inner, child, path),
            ScalarExpr::Cmp { op, left, right } => {
                use spacetime_algebra::CmpOp::*;
                match (op, &**left, &**right) {
                    (Eq, ScalarExpr::Col(c), ScalarExpr::Lit(_))
                    | (Eq, ScalarExpr::Lit(_), ScalarExpr::Col(c)) => {
                        1.0 / self.distinct_guarded(child, *c, path).max(1.0)
                    }
                    (Eq, ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                        let da = self.distinct_guarded(child, *a, path).max(1.0);
                        let db = self.distinct_guarded(child, *b, path).max(1.0);
                        1.0 / da.max(db)
                    }
                    (Eq, ..) => 0.1,
                    (Ne, ..) => 0.9,
                    _ => 1.0 / 3.0,
                }
            }
            _ => 0.5,
        }
    }

    // -----------------------------------------------------------------
    // Distinct counts
    // -----------------------------------------------------------------

    /// Estimated distinct values in column `col` of a group's output.
    pub fn distinct(&mut self, g: GroupId, col: usize) -> f64 {
        let g = self.memo.find(g);
        self.distinct_guarded(g, col, &mut vec![])
    }

    fn distinct_guarded(&mut self, g: GroupId, col: usize, path: &mut Vec<GroupId>) -> f64 {
        let g = self.memo.find(g);
        if let Some(&d) = self.distinct_cache.get(&(g, col)) {
            return d;
        }
        if path.contains(&g) {
            return 1.0;
        }
        path.push(g);
        let raw = match self.repr_op(g, path) {
            Some(op) => self.op_distinct(op, col, path),
            None => 1.0,
        };
        path.pop();
        let card = self.card_guarded(g, path);
        let d = raw.min(card.max(1.0)).max(1.0);
        self.distinct_cache.insert((g, col), d);
        d
    }

    fn op_distinct(&mut self, op: OpId, col: usize, path: &mut Vec<GroupId>) -> f64 {
        let node = self.memo.op(op).op.clone();
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => self
                .catalog
                .table(&table)
                .map(|t| t.stats.distinct_or_card(col) as f64)
                .unwrap_or(1.0),
            OpKind::Select { .. } | OpKind::Distinct => {
                self.distinct_guarded(children[0], col, path)
            }
            OpKind::Project { exprs } => match exprs.get(col) {
                Some((ScalarExpr::Col(c), _)) => self.distinct_guarded(children[0], *c, path),
                _ => self.card_guarded(children[0], path),
            },
            OpKind::Join { .. } => {
                let la = self.memo.schema(children[0]).arity();
                if col < la {
                    self.distinct_guarded(children[0], col, path)
                } else {
                    self.distinct_guarded(children[1], col - la, path)
                }
            }
            OpKind::Aggregate { group_by, .. } => {
                if let Some(&gcol) = group_by.get(col) {
                    self.distinct_guarded(children[0], gcol, path)
                } else {
                    // Aggregate outputs: assume near-unique per group.
                    self.card_guarded(self.memo.op_group(op), path)
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Keys & match counts
    // -----------------------------------------------------------------

    /// Candidate keys of a group's output (derived from one representative
    /// tree).
    pub fn keys(&mut self, g: GroupId) -> Vec<Key> {
        let g = self.memo.find(g);
        if let Some(k) = self.key_cache.get(&g) {
            return k.clone();
        }
        let tree = self.memo.extract_one(g);
        let keys = derive_keys(&tree, self.catalog);
        self.key_cache.insert(g, keys.clone());
        keys
    }

    /// Estimated number of distinct value *combinations* of a column set.
    ///
    /// This is functional-dependency aware through keys: if the set covers
    /// a candidate key of the (sub-)expression the columns originate from,
    /// the combination count equals that expression's cardinality rather
    /// than the product of per-column counts. That is exactly the paper's
    /// Q3e arithmetic: on N4 = Emp ⋈ Dept, the binding (Dept.DName,
    /// Budget) has 1000 combinations (Budget is determined by the key
    /// DName), so one department matches 10000/1000 = 10 tuples.
    pub fn combined_distinct(&mut self, g: GroupId, cols: &[usize]) -> f64 {
        let set: BTreeSet<usize> = cols.iter().copied().collect();
        self.combined_distinct_guarded(self.memo.find(g), &set, &mut vec![])
    }

    fn combined_distinct_guarded(
        &mut self,
        g: GroupId,
        cols: &BTreeSet<usize>,
        path: &mut Vec<GroupId>,
    ) -> f64 {
        let g = self.memo.find(g);
        if cols.is_empty() {
            return 1.0;
        }
        let card = self.card(g).max(1.0);
        if self.keys(g).iter().any(|k| k.is_subset(cols)) {
            return card;
        }
        if path.contains(&g) {
            return 1.0;
        }
        path.push(g);
        let raw = match self.repr_op(g, path) {
            Some(op) => {
                let node = self.memo.op(op).op.clone();
                let children = self.memo.op_children(op);
                match node {
                    OpKind::Scan { table } => {
                        let stats = self.catalog.table(&table).map(|t| t.stats.clone());
                        match stats {
                            Ok(st) => cols
                                .iter()
                                .map(|&c| st.distinct_or_card(c) as f64)
                                .product(),
                            Err(_) => 1.0,
                        }
                    }
                    OpKind::Select { .. } | OpKind::Distinct => {
                        self.combined_distinct_guarded(children[0], cols, path)
                    }
                    OpKind::Project { exprs } => {
                        let mapped: Option<BTreeSet<usize>> = cols
                            .iter()
                            .map(|&c| match exprs.get(c) {
                                Some((ScalarExpr::Col(i), _)) => Some(*i),
                                _ => None,
                            })
                            .collect();
                        match mapped {
                            Some(m) => self.combined_distinct_guarded(children[0], &m, path),
                            None => card,
                        }
                    }
                    OpKind::Join { condition } => {
                        let la = self.memo.schema(children[0]).arity();
                        // Columns equated by the join condition carry the
                        // same value: keep one representative so equated
                        // columns don't multiply the combination count
                        // (Emp.DName ≡ Dept.DName yields one dimension,
                        // not two).
                        let mut cols = cols.clone();
                        for &(l, r) in &condition.equi {
                            if cols.contains(&l) && cols.contains(&(r + la)) {
                                cols.remove(&l);
                            }
                        }
                        let left: BTreeSet<usize> =
                            cols.iter().copied().filter(|&c| c < la).collect();
                        let right: BTreeSet<usize> =
                            cols.iter().filter(|&&c| c >= la).map(|&c| c - la).collect();
                        self.combined_distinct_guarded(children[0], &left, path)
                            * self.combined_distinct_guarded(children[1], &right, path)
                    }
                    OpKind::Aggregate { group_by, .. } => {
                        let mapped: Option<BTreeSet<usize>> =
                            cols.iter().map(|&c| group_by.get(c).copied()).collect();
                        match mapped {
                            Some(m) => self.combined_distinct_guarded(children[0], &m, path),
                            None => card,
                        }
                    }
                }
            }
            None => 1.0,
        };
        path.pop();
        raw.clamp(1.0, card)
    }

    /// Expected number of tuples of `g` matching a binding of the given
    /// columns: 1 if the columns cover a key, else cardinality over the
    /// FD-aware combined distinct count.
    pub fn matches(&mut self, g: GroupId, cols: &[usize]) -> f64 {
        let g = self.memo.find(g);
        let card = self.card(g);
        if cols.is_empty() {
            return card;
        }
        if card == 0.0 {
            return 0.0;
        }
        let set: BTreeSet<usize> = cols.iter().copied().collect();
        if self.keys(g).iter().any(|k| k.is_subset(&set)) {
            return 1.0;
        }
        let denom = self.combined_distinct(g, cols).max(1.0);
        (card / denom).clamp(1.0, card)
    }

    /// Estimated pages of a group's (hypothetical) materialization.
    pub fn pages(&mut self, g: GroupId) -> f64 {
        let g = self.memo.find(g);
        // Base tables know their packing; derived groups use the default.
        for op in self.memo.group_ops(g) {
            if let OpKind::Scan { table } = &self.memo.op(op).op {
                if let Ok(t) = self.catalog.table(table) {
                    return t.stats.pages() as f64;
                }
            }
        }
        let card = self.card(g);
        (card / spacetime_storage::relation::DEFAULT_TUPLES_PER_PAGE as f64).ceil()
    }

    // -----------------------------------------------------------------
    // Delta-size estimation
    // -----------------------------------------------------------------

    /// Estimated delta arriving at `g` when one table update of `txn` is
    /// propagated (sequential propagation: one updated table at a time).
    pub fn delta_for(&mut self, g: GroupId, update: &TableUpdate) -> DeltaEst {
        self.delta_guarded(self.memo.find(g), update, &mut vec![])
    }

    /// Total estimated delta at `g` over all of a transaction's table
    /// updates.
    pub fn delta_for_txn(&mut self, g: GroupId, txn: &TransactionType) -> Vec<DeltaEst> {
        txn.updates.iter().map(|u| self.delta_for(g, u)).collect()
    }

    fn delta_guarded(
        &mut self,
        g: GroupId,
        update: &TableUpdate,
        path: &mut Vec<GroupId>,
    ) -> DeltaEst {
        let g = self.memo.find(g);
        if path.contains(&g) {
            return DeltaEst::NONE;
        }
        path.push(g);
        let result = match self.repr_op(g, path) {
            Some(op) => self.op_delta(op, update, path),
            None => DeltaEst::NONE,
        };
        path.pop();
        result
    }

    fn op_delta(&mut self, op: OpId, update: &TableUpdate, path: &mut Vec<GroupId>) -> DeltaEst {
        let node = self.memo.op(op).op.clone();
        let children = self.memo.op_children(op);
        match node {
            OpKind::Scan { table } => {
                if table == update.table {
                    DeltaEst {
                        size: update.size,
                        kind: update.kind,
                    }
                } else {
                    DeltaEst::NONE
                }
            }
            OpKind::Select { predicate } => {
                let d = self.delta_guarded(children[0], update, path);
                if d.is_zero() {
                    return d;
                }
                let sel = self.selectivity(&predicate, children[0], path);
                DeltaEst {
                    size: d.size * sel,
                    kind: d.kind,
                }
            }
            OpKind::Project { .. } => self.delta_guarded(children[0], update, path),
            OpKind::Join { condition } => {
                let (l, r) = (children[0], children[1]);
                let dl = self.delta_guarded(l, update, path);
                let dr = self.delta_guarded(r, update, path);
                let mut size = 0.0;
                let mut kind = UpdateKind::Modify;
                if !dl.is_zero() {
                    size += dl.size * self.matches(r, &condition.right_cols());
                    kind = dl.kind;
                }
                if !dr.is_zero() {
                    size += dr.size * self.matches(l, &condition.left_cols());
                    kind = dr.kind;
                }
                DeltaEst { size, kind }
            }
            OpKind::Aggregate { group_by, .. } => {
                let d = self.delta_guarded(children[0], update, path);
                if d.is_zero() {
                    return DeltaEst::NONE;
                }
                // One output row per affected group; updates to existing
                // groups are modifications of the aggregate values.
                let groups = self.card_guarded(self.memo.op_group(op), path).max(1.0);
                let _ = group_by;
                DeltaEst {
                    size: d.size.min(groups),
                    kind: UpdateKind::Modify,
                }
            }
            OpKind::Distinct => {
                let d = self.delta_guarded(children[0], update, path);
                let card = self.card_guarded(self.memo.op_group(op), path).max(1.0);
                DeltaEst {
                    size: d.size.min(card),
                    kind: d.kind,
                }
            }
        }
    }

    /// Estimated cost of physically applying a transaction's updates to a
    /// materialization of `g` (§3.4, "Cost of Performing Updates to V").
    pub fn update_apply_cost(&mut self, g: GroupId, txn: &TransactionType) -> Cost {
        let mut total = Cost::ZERO;
        for u in &txn.updates {
            let d = self.delta_for(g, u);
            if !d.is_zero() {
                total += self.model.apply_update(d.kind, d.size);
            }
        }
        total
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::model::PageIoCostModel;
    use crate::txn::TransactionType;
    use spacetime_algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ExprTree};
    use spacetime_memo::{explore, Memo};
    use spacetime_storage::{DataType, Schema, TableStats};

    /// The paper's sample database: 1000 departments, 10000 employees,
    /// uniform distribution.
    pub fn paper_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[
                    ("EName", DataType::Str),
                    ("DName", DataType::Str),
                    ("Salary", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Emp", &["EName"]).unwrap();
        cat.create_index("Emp", &["DName"]).unwrap();
        cat.table_mut("Emp").unwrap().stats =
            TableStats::declared(10_000, [(0, 10_000), (1, 1_000), (2, 1_000)]);
        cat.create_table(
            "Dept",
            Schema::of_table(
                "Dept",
                &[
                    ("DName", DataType::Str),
                    ("MName", DataType::Str),
                    ("Budget", DataType::Int),
                ],
            ),
        )
        .unwrap();
        cat.declare_key("Dept", &["DName"]).unwrap();
        cat.table_mut("Dept").unwrap().stats =
            TableStats::declared(1_000, [(0, 1_000), (1, 900), (2, 500)]);
        cat
    }

    /// Figure 1 (right) tree.
    pub fn problem_dept_tree(cat: &Catalog) -> ExprTree {
        let emp = ExprNode::scan(cat, "Emp").unwrap();
        let dept = ExprNode::scan(cat, "Dept").unwrap();
        let join = ExprNode::join_on(emp, dept, &[("Emp.DName", "Dept.DName")]).unwrap();
        let agg = ExprNode::aggregate(
            join,
            vec![3, 5],
            vec![AggExpr::new(
                AggFunc::Sum,
                spacetime_algebra::ScalarExpr::col(2),
                "SalSum",
            )],
        )
        .unwrap();
        ExprNode::select(
            agg,
            spacetime_algebra::ScalarExpr::cmp(
                CmpOp::Gt,
                spacetime_algebra::ScalarExpr::col(2),
                spacetime_algebra::ScalarExpr::col(1),
            ),
        )
        .unwrap()
    }

    fn setup() -> (Catalog, Memo, GroupId) {
        let cat = paper_catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&problem_dept_tree(&cat));
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let root = memo.find(root);
        (cat, memo, root)
    }

    fn find_group(memo: &Memo, pred: impl Fn(&OpKind, &Memo, OpId) -> bool) -> GroupId {
        for g in memo.groups() {
            for op in memo.group_ops(g) {
                if pred(&memo.op(op).op, memo, op) {
                    return g;
                }
            }
        }
        panic!("group not found");
    }

    /// N3: aggregate directly over Emp.
    fn n3(memo: &Memo) -> GroupId {
        find_group(memo, |op, m, o| {
            matches!(op, OpKind::Aggregate { .. })
                && m.group_ops(m.op_children(o)[0])
                    .iter()
                    .any(|&c| matches!(&m.op(c).op, OpKind::Scan { table } if table == "Emp"))
        })
    }

    /// N4: the raw Emp ⋈ Dept join.
    fn n4(memo: &Memo) -> GroupId {
        find_group(memo, |op, m, o| {
            matches!(op, OpKind::Join { .. }) && m.op_children(o).iter().all(|&c| m.is_leaf(c))
        })
    }

    #[test]
    fn paper_cardinalities() {
        let (cat, memo, root) = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&memo, &cat, &model);
        assert_eq!(ctx.card(n4(&memo)), 10_000.0, "join preserves Emp rows");
        assert_eq!(ctx.card(n3(&memo)), 1_000.0, "one row per department");
        assert!(ctx.card(root) <= 1_000.0);
    }

    #[test]
    fn paper_match_counts() {
        let (cat, memo, _) = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&memo, &cat, &model);
        // "an indexed read of the Emp relation has a cost of 11 page I/Os"
        // ⇒ 10 matching tuples per department.
        let emp = find_group(
            &memo,
            |op, _, _| matches!(op, OpKind::Scan { table } if table == "Emp"),
        );
        assert_eq!(ctx.matches(emp, &[1]), 10.0);
        // Dept is keyed on DName: exactly one match.
        let dept = find_group(
            &memo,
            |op, _, _| matches!(op, OpKind::Scan { table } if table == "Dept"),
        );
        assert_eq!(ctx.matches(dept, &[0]), 1.0);
        // N3 output is keyed on its group column.
        assert_eq!(ctx.matches(n3(&memo), &[0]), 1.0);
        // N4 matched on (Dept.DName, Budget): 10 tuples (one department).
        assert_eq!(ctx.matches(n4(&memo), &[3, 5]), 10.0);
    }

    #[test]
    fn paper_delta_sizes() {
        let (cat, memo, _) = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&memo, &cat, &model);
        let t_emp = TransactionType::modify(">Emp", "Emp", 1.0);
        let t_dept = TransactionType::modify(">Dept", "Dept", 1.0);
        // "at node N4 … one update tuple for an update to the Emp relation,
        // but 10 update tuples for an update to the Dept relation".
        assert_eq!(ctx.delta_for(n4(&memo), &t_emp.updates[0]).size, 1.0);
        assert_eq!(ctx.delta_for(n4(&memo), &t_dept.updates[0]).size, 10.0);
        // N3 is unaffected by Dept updates.
        assert!(ctx.delta_for(n3(&memo), &t_dept.updates[0]).is_zero());
        assert_eq!(ctx.delta_for(n3(&memo), &t_emp.updates[0]).size, 1.0);
    }

    #[test]
    fn paper_maintenance_costs() {
        let (cat, memo, _) = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&memo, &cat, &model);
        let t_emp = TransactionType::modify(">Emp", "Emp", 1.0);
        let t_dept = TransactionType::modify(">Dept", "Dept", 1.0);
        // T2 of EXPERIMENTS.md: N3·>Emp = 3, N4·>Emp = 3, N4·>Dept = 21,
        // N3·>Dept = 0.
        assert_eq!(ctx.update_apply_cost(n3(&memo), &t_emp), Cost(3.0));
        assert_eq!(ctx.update_apply_cost(n3(&memo), &t_dept), Cost::ZERO);
        assert_eq!(ctx.update_apply_cost(n4(&memo), &t_emp), Cost(3.0));
        assert_eq!(ctx.update_apply_cost(n4(&memo), &t_dept), Cost(21.0));
    }

    #[test]
    fn selectivity_shapes() {
        let (cat, memo, _) = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&memo, &cat, &model);
        let emp = find_group(
            &memo,
            |op, _, _| matches!(op, OpKind::Scan { table } if table == "Emp"),
        );
        // Distinct counts clamp to [1, card].
        assert_eq!(ctx.distinct(emp, 0), 10_000.0);
        assert_eq!(ctx.distinct(emp, 1), 1_000.0);
    }
}

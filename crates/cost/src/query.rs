//! Query costing in the presence of materialized views.
//!
//! When a delta is propagated through an operation node, queries are posed
//! on the node's other inputs (§2.2). The cost of answering such a query
//! on an equivalence node depends on the chosen view set:
//!
//! > *"Determining the cost of computing updates to a node in an update
//! > track in the presence of materialized views in V thus reduces to the
//! > problem of determining the cost of evaluating a query Q on an
//! > equivalence node in D_V, in the presence of the materialized views in
//! > V. This is a standard query optimization problem, and the
//! > optimization techniques of Chaudhuri et al. [4] … can be easily
//! > adapted for this task."* (§3.4)
//!
//! [`CostCtx::query_cost`] is that adaptation: a best-plan search over the
//! memo where a query on a *materialized* (or base) node is a hash-index
//! lookup, and a query on any other node recursively pushes its binding
//! down through the node's alternative operators. [`CostCtx::batch_query_cost`]
//! adds the multi-query-optimization step of §3.4 (common subexpressions
//! between the queries of one update track are charged once).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use spacetime_algebra::{OpKind, ScalarExpr};
use spacetime_memo::GroupId;

use crate::est::CostCtx;
use crate::model::Cost;

/// A set of materialized equivalence nodes (canonical group ids).
pub type Marking = BTreeSet<GroupId>;

/// Hash of the marking slice a query on `g` can actually consult:
/// `marked ∩ reachable(g)`, in the marking's sorted order. The guarded
/// costing recursion below only tests membership of groups it visits, and
/// it visits exactly the groups reachable from `g` — so the cost is a pure
/// function of `(g, cols)` and this slice, and two *different* view sets
/// that agree on it may share one cache entry. That is what lets the
/// cross-worker [`crate::shared::SharedQueryCache`] produce hits during
/// `search_view_sets`, where every worker prices a different marking.
fn narrowed_marking_hash(ctx: &mut CostCtx<'_>, g: GroupId, marked: &Marking) -> u64 {
    let reach = ctx.reachable(g);
    let mut h = DefaultHasher::new();
    for m in marked {
        if reach.contains(m) {
            m.0.hash(&mut h);
        }
    }
    h.finish()
}

/// One query in a batch: (node, binding columns, probes).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchQuery {
    /// The queried equivalence node.
    pub group: GroupId,
    /// Binding columns (output positions of `group`).
    pub cols: Vec<usize>,
    /// How many times the query is probed (distinct delta keys).
    pub probes: f64,
}

impl<'a> CostCtx<'a> {
    /// Cost of answering "tuples of `g` whose `cols` match a given
    /// binding" once, under the marked view set. Consults the local memo
    /// table first, then the cross-thread shared cache (if attached), and
    /// publishes fresh results to both.
    pub fn query_cost(&mut self, g: GroupId, cols: &[usize], marked: &Marking) -> Cost {
        let g = self.memo.find(g);
        let key = (g, cols.to_vec(), narrowed_marking_hash(self, g, marked));
        if let Some(&c) = self.query_cache().get(&key) {
            return c;
        }
        if let Some(c) = self.shared_queries().and_then(|s| s.get(&key)) {
            self.query_cache().insert(key, c);
            return c;
        }
        let c = self.query_cost_guarded(key.0, cols, marked, &mut vec![]);
        if let Some(shared) = self.shared_queries() {
            shared.insert(key.clone(), c);
        }
        self.query_cache().insert(key, c);
        c
    }

    fn query_cost_guarded(
        &mut self,
        g: GroupId,
        cols: &[usize],
        marked: &Marking,
        path: &mut Vec<GroupId>,
    ) -> Cost {
        let g = self.memo.find(g);
        if cols.is_empty() {
            return self.full_eval_guarded(g, marked, path);
        }
        if self.memo.is_leaf(g) || marked.contains(&g) {
            let matches = self.matches(g, cols);
            return self.model.lookup(matches);
        }
        if path.contains(&g) {
            return Cost::INFINITY;
        }
        path.push(g);
        let mut best = Cost::INFINITY;
        for op in self.memo.group_ops(g) {
            let cost = self.op_query_cost_guarded(op, cols, marked, path);
            best = best.min(cost);
        }
        path.pop();
        best
    }

    /// Cost of answering the query through one specific operation node —
    /// exposed so the runtime engine can pick the same plan the optimizer
    /// priced.
    pub fn op_query_cost(
        &mut self,
        op: spacetime_memo::OpId,
        cols: &[usize],
        marked: &Marking,
    ) -> Cost {
        self.op_query_cost_guarded(op, cols, marked, &mut vec![self.memo.op_group(op)])
    }

    fn op_query_cost_guarded(
        &mut self,
        op: spacetime_memo::OpId,
        cols: &[usize],
        marked: &Marking,
        path: &mut Vec<GroupId>,
    ) -> Cost {
        {
            let node = self.memo.op(op).op.clone();
            let children = self.memo.op_children(op);
            let cost = match node {
                OpKind::Scan { .. } => {
                    // A scan alternative inside a non-leaf group (possible
                    // only through merges); treat as a lookup.
                    let g = self.memo.op_group(op);
                    let matches = self.matches(g, cols);
                    self.model.lookup(matches)
                }
                OpKind::Select { .. } | OpKind::Distinct => {
                    self.query_cost_guarded(children[0], cols, marked, path)
                }
                OpKind::Project { exprs } => {
                    let mapped: Option<Vec<usize>> = cols
                        .iter()
                        .map(|&c| match exprs.get(c) {
                            Some((ScalarExpr::Col(i), _)) => Some(*i),
                            _ => None,
                        })
                        .collect();
                    match mapped {
                        Some(m) => self.query_cost_guarded(children[0], &m, marked, path),
                        None => self.full_eval_guarded(children[0], marked, path),
                    }
                }
                OpKind::Aggregate { group_by, .. } => {
                    let mapped: Option<Vec<usize>> =
                        cols.iter().map(|&c| group_by.get(c).copied()).collect();
                    match mapped {
                        Some(m) => self.query_cost_guarded(children[0], &m, marked, path),
                        None => self.full_eval_guarded(children[0], marked, path),
                    }
                }
                OpKind::Join { condition } => {
                    let (a, b) = (children[0], children[1]);
                    let la = self.memo.schema(a).arity();
                    let lp: Vec<usize> = cols.iter().copied().filter(|&c| c < la).collect();
                    let rp: Vec<usize> =
                        cols.iter().filter(|&&c| c >= la).map(|&c| c - la).collect();
                    let lcols = condition.left_cols();
                    let rcols = condition.right_cols();
                    if rp.is_empty() {
                        // Binding on the left side: fetch matching A
                        // tuples, then probe B per result on the join key.
                        let qa = self.query_cost_guarded(a, &lp, marked, path);
                        let ka = self.matches(a, &lp);
                        let qb = self.query_cost_guarded(b, &rcols, marked, path);
                        qa + qb * ka
                    } else if lp.is_empty() {
                        let qb = self.query_cost_guarded(b, &rp, marked, path);
                        let kb = self.matches(b, &rp);
                        let qa = self.query_cost_guarded(a, &lcols, marked, path);
                        qb + qa * kb
                    } else {
                        // Binding split across both sides: drive from the
                        // left part, filter the right.
                        let qa = self.query_cost_guarded(a, &lp, marked, path);
                        let ka = self.matches(a, &lp);
                        let mut rq: Vec<usize> = rcols.clone();
                        for &c in &rp {
                            if !rq.contains(&c) {
                                rq.push(c);
                            }
                        }
                        let qb = self.query_cost_guarded(b, &rq, marked, path);
                        qa + qb * ka
                    }
                }
            };
            cost
        }
    }

    /// Cost of fully evaluating a node under the marked view set (used
    /// when a binding cannot be pushed down).
    pub fn full_eval_cost(&mut self, g: GroupId, marked: &Marking) -> Cost {
        self.full_eval_guarded(self.memo.find(g), marked, &mut vec![])
    }

    fn full_eval_guarded(&mut self, g: GroupId, marked: &Marking, path: &mut Vec<GroupId>) -> Cost {
        let g = self.memo.find(g);
        if self.memo.is_leaf(g) || marked.contains(&g) {
            let pages = self.pages(g);
            return self.model.scan(pages);
        }
        if path.contains(&g) {
            return Cost::INFINITY;
        }
        path.push(g);
        let mut best = Cost::INFINITY;
        for op in self.memo.group_ops(g) {
            let children = self.memo.op_children(op);
            let mut cost = Cost::ZERO;
            for c in children {
                cost += self.full_eval_guarded(c, marked, path);
            }
            best = best.min(cost);
        }
        path.pop();
        best
    }

    /// Cost of answering a batch of queries (one update track's query
    /// set), with multi-query optimization: identical queries are shared
    /// and charged once with their maximum probe count (§3.4: "this set of
    /// queries can have common subexpressions, and multi-query
    /// optimization techniques can be used").
    pub fn batch_query_cost(&mut self, queries: &[BatchQuery], marked: &Marking) -> Cost {
        // BTreeMap, not HashMap: the f64 summation below must happen in a
        // deterministic order so serial and parallel searches produce
        // bit-identical weighted costs run over run.
        let mut shared: BTreeMap<(GroupId, Vec<usize>), f64> = BTreeMap::new();
        for q in queries {
            let key = (self.memo.find(q.group), q.cols.clone());
            let e = shared.entry(key).or_insert(0.0);
            *e = e.max(q.probes);
        }
        let mut total = Cost::ZERO;
        for ((g, cols), probes) in shared {
            total += self.query_cost(g, &cols, marked) * probes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::est::tests::{paper_catalog, problem_dept_tree};
    use crate::model::PageIoCostModel;
    use spacetime_memo::{explore, Memo};
    use spacetime_storage::Catalog;

    struct Setup {
        cat: Catalog,
        memo: Memo,
    }

    fn setup() -> Setup {
        let cat = paper_catalog();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&problem_dept_tree(&cat));
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        Setup { cat, memo }
    }

    fn find_group(
        memo: &Memo,
        pred: impl Fn(&OpKind, &Memo, spacetime_memo::OpId) -> bool,
    ) -> GroupId {
        for g in memo.groups() {
            for op in memo.group_ops(g) {
                if pred(&memo.op(op).op, memo, op) {
                    return g;
                }
            }
        }
        panic!("group not found");
    }

    fn n3(memo: &Memo) -> GroupId {
        find_group(memo, |op, m, o| {
            matches!(op, OpKind::Aggregate { .. })
                && m.group_ops(m.op_children(o)[0])
                    .iter()
                    .any(|&c| matches!(&m.op(c).op, OpKind::Scan { table } if table == "Emp"))
        })
    }

    fn n4(memo: &Memo) -> GroupId {
        find_group(memo, |op, m, o| {
            matches!(op, OpKind::Join { .. }) && m.op_children(o).iter().all(|&c| m.is_leaf(c))
        })
    }

    /// Reproduces the paper's §3.6 query-cost table (T1), the heart of the
    /// whole reproduction: each entry is the cost of one posed query under
    /// a view set.
    #[test]
    fn paper_query_cost_table_t1() {
        let s = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let n3 = n3(&s.memo);
        let n4 = n4(&s.memo);
        let dept = find_group(
            &s.memo,
            |op, _, _| matches!(op, OpKind::Scan { table } if table == "Dept"),
        );
        let emp = find_group(
            &s.memo,
            |op, _, _| matches!(op, OpKind::Scan { table } if table == "Emp"),
        );
        let none: Marking = Marking::new();
        let m3: Marking = [s.memo.find(n3)].into_iter().collect();
        let m4: Marking = [s.memo.find(n4)].into_iter().collect();

        // Q2Ld: at E2, the sum-of-salaries of the updated department —
        // a query on N3 bound on DName (output col 0).
        assert_eq!(ctx.query_cost(n3, &[0], &none), Cost(11.0));
        assert_eq!(ctx.query_cost(n3, &[0], &m3), Cost(2.0));
        assert_eq!(ctx.query_cost(n3, &[0], &m4), Cost(11.0));

        // Q2Re: the matching Dept tuple — query on the Dept leaf by key.
        assert_eq!(ctx.query_cost(dept, &[0], &none), Cost(2.0));
        assert_eq!(ctx.query_cost(dept, &[0], &m3), Cost(2.0));
        assert_eq!(ctx.query_cost(dept, &[0], &m4), Cost(2.0));

        // Q3e: at E3, the affected group of N4 — bound on (Dept.DName,
        // Budget) = output cols (3, 5) of the join.
        assert_eq!(ctx.query_cost(n4, &[3, 5], &none), Cost(13.0));
        assert_eq!(ctx.query_cost(n4, &[3, 5], &m3), Cost(13.0));
        assert_eq!(ctx.query_cost(n4, &[3, 5], &m4), Cost(11.0));

        // Q4e: at E4, the updated employee's department group — query on
        // the Emp leaf bound on DName (col 1).
        assert_eq!(ctx.query_cost(emp, &[1], &none), Cost(11.0));
        assert_eq!(ctx.query_cost(emp, &[1], &m4), Cost(11.0));

        // Q5Ld: employees of the updated Dept tuple.
        assert_eq!(ctx.query_cost(emp, &[1], &m3), Cost(11.0));
        // Q5Re: matching Dept tuple of the updated Emp tuple.
        assert_eq!(ctx.query_cost(dept, &[0], &none), Cost(2.0));
    }

    #[test]
    fn marking_the_queried_node_makes_it_a_lookup() {
        let s = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let n4 = n4(&s.memo);
        let none = Marking::new();
        let m4: Marking = [s.memo.find(n4)].into_iter().collect();
        // Querying N4 on Emp.DName (col 1): unmarked, it evaluates via the
        // join; marked it is a single probe returning ~10 tuples.
        let unmarked = ctx.query_cost(n4, &[1], &none);
        let marked = ctx.query_cost(n4, &[1], &m4);
        assert_eq!(marked, Cost(11.0));
        assert!(unmarked >= marked);
    }

    #[test]
    fn batch_shares_identical_queries() {
        let s = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let dept = find_group(
            &s.memo,
            |op, _, _| matches!(op, OpKind::Scan { table } if table == "Dept"),
        );
        let none = Marking::new();
        let q = BatchQuery {
            group: dept,
            cols: vec![0],
            probes: 1.0,
        };
        let single = ctx.batch_query_cost(std::slice::from_ref(&q), &none);
        let double = ctx.batch_query_cost(&[q.clone(), q], &none);
        assert_eq!(single, double, "identical queries are charged once");
    }

    #[test]
    fn full_eval_prefers_cheapest_alternative() {
        let s = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let root = s.memo.root().unwrap();
        let none = Marking::new();
        let cost = ctx.full_eval_cost(root, &none);
        assert!(cost.is_finite());
        // Scanning Emp (1000 pages) + Dept (100 pages) bounds any plan
        // from below at our stats; the cheapest plan cannot beat the leaf
        // scans it must perform.
        assert!(cost >= Cost(1100.0), "{cost}");
        // Marking the root makes evaluation a scan of ~100 pages.
        let mroot: Marking = [root].into_iter().collect();
        let marked_cost = ctx.full_eval_cost(root, &mroot);
        assert!(marked_cost < cost);
    }

    /// The shared-cache key hashes only `marked ∩ reachable(g)`: two
    /// contexts pricing the same query under *different* view sets that
    /// agree below the queried node share one entry — and the shared
    /// answer equals the recomputed one.
    #[test]
    fn narrowed_keys_share_across_contexts_and_markings() {
        let s = setup();
        let model = PageIoCostModel::default();
        let shared = crate::shared::SharedQueryCache::new();
        let n3 = n3(&s.memo);
        let n4 = n4(&s.memo);

        let mut a = CostCtx::with_shared_cache(&s.memo, &s.cat, &model, shared.clone());
        // Precondition for the test's logic: N4 (the Emp ⋈ Dept join) is
        // not reachable from N3 (the aggregate over Emp), so marking it
        // cannot affect a query on N3.
        assert!(!a.reachable(n3).contains(&s.memo.find(n4)));

        let m3: Marking = [s.memo.find(n3)].into_iter().collect();
        let m34: Marking = [s.memo.find(n3), s.memo.find(n4)].into_iter().collect();

        let priced = a.query_cost(n3, &[0], &m3);
        assert_eq!(priced, Cost(2.0), "T1 pin: marked N3 is a lookup");
        let (h0, m0) = shared.stats();
        assert_eq!((h0, m0), (0, 1), "first pricing misses, then publishes");

        // A *fresh* context under a *different* marking that agrees on
        // reachable(N3): must hit the shared entry, not recompute.
        let mut b = CostCtx::with_shared_cache(&s.memo, &s.cat, &model, shared.clone());
        assert_eq!(b.query_cost(n3, &[0], &m34), priced);
        let (h1, _) = shared.stats();
        assert_eq!(h1, 1, "narrowed key collided across markings");

        // And a marking that differs *inside* the slice must not collide.
        let mut c = CostCtx::with_shared_cache(&s.memo, &s.cat, &model, shared);
        assert_eq!(c.query_cost(n3, &[0], &Marking::new()), Cost(11.0));
    }

    #[test]
    fn unbound_query_falls_back_to_full_eval() {
        let s = setup();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.cat, &model);
        let root = s.memo.root().unwrap();
        let none = Marking::new();
        assert_eq!(
            ctx.query_cost(root, &[], &none),
            ctx.full_eval_cost(root, &none)
        );
    }
}

//! The cost type and cost models.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use crate::txn::UpdateKind;

/// A cost in (estimated) page I/Os. Totally ordered; `INFINITY` marks
/// unevaluable plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost(pub f64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0.0);
    /// Unreachable/unevaluable.
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// The raw page-I/O estimate.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether the cost is finite (a real plan exists).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Minimum of two costs.
    pub fn min(self, other: Cost) -> Cost {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: f64) -> Cost {
        Cost(self.0 * rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else if (self.0 - self.0.round()).abs() < 1e-9 {
            write!(f, "{}", self.0.round() as i64)
        } else {
            write!(f, "{:.2}", self.0)
        }
    }
}

/// A monotonic cost model: primitive storage operations priced in page
/// I/Os. *Monotonic* means every primitive is non-negative and costs
/// compose additively, so "the cost of evaluating a specific expression
/// tree is no less than the cost of evaluating a subtree of that
/// expression tree" (§3.4) — Theorem 3.1's precondition, property-tested
/// in this crate.
///
/// Models must be `Sync`: the optimizer's parallel search shares one model
/// across worker threads (each worker holds its own mutable `CostCtx`, but
/// the model itself is read-only).
pub trait CostModel: Sync {
    /// Cost of an indexed lookup expected to return `tuples` tuples.
    fn lookup(&self, tuples: f64) -> Cost;

    /// Cost of sequentially scanning `pages` pages.
    fn scan(&self, pages: f64) -> Cost;

    /// Cost of applying an update of `tuples` touched tuples to a
    /// materialized relation (implementations know how many hash indices
    /// each materialization maintains).
    fn apply_update(&self, kind: UpdateKind, tuples: f64) -> Cost;
}

/// The §3.6 model: hash indices, no overflowed buckets, unclustered
/// tuples.
///
/// * Lookup: one index page + one relation page per returned tuple.
/// * Update: one index page read per index, an index page write only when
///   the indexed key changes (inserts/deletes always change bucket
///   contents; in-place modifications of non-key columns do not), one
///   relation page read per tuple to fetch the old value (not needed for
///   pure inserts) and one relation page write per tuple.
#[derive(Debug, Clone, Copy)]
pub struct PageIoCostModel {
    /// Hash indices assumed on each materialized view (the paper's
    /// examples maintain "a single index on DName").
    pub indexes_per_view: f64,
}

impl Default for PageIoCostModel {
    fn default() -> Self {
        PageIoCostModel {
            indexes_per_view: 1.0,
        }
    }
}

impl CostModel for PageIoCostModel {
    fn lookup(&self, tuples: f64) -> Cost {
        Cost(1.0 + tuples.max(0.0))
    }

    fn scan(&self, pages: f64) -> Cost {
        Cost(pages.max(0.0))
    }

    fn apply_update(&self, kind: UpdateKind, tuples: f64) -> Cost {
        let indexes = self.indexes_per_view;
        let tuples = tuples.max(0.0);
        if tuples == 0.0 {
            return Cost::ZERO;
        }
        match kind {
            // Locate bucket (read) + write it back, plus data page writes.
            UpdateKind::Insert => Cost(2.0 * indexes + tuples),
            // Locate + write bucket, read old pages, write freed pages.
            UpdateKind::Delete => Cost(2.0 * indexes + 2.0 * tuples),
            // The paper's modification arithmetic: one index page read per
            // index (no write — the key is unchanged), read + write each
            // tuple. N3·>Emp: 1 + 1 + 1 = 3; N4·>Dept: 1 + 10 + 10 = 21.
            UpdateKind::Modify => Cost(indexes + 2.0 * tuples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_update_costs() {
        let m = PageIoCostModel::default();
        assert_eq!(m.apply_update(UpdateKind::Modify, 1.0), Cost(3.0));
        assert_eq!(m.apply_update(UpdateKind::Modify, 10.0), Cost(21.0));
        assert_eq!(m.apply_update(UpdateKind::Modify, 0.0), Cost::ZERO);
        assert_eq!(m.apply_update(UpdateKind::Insert, 1.0), Cost(3.0));
        assert_eq!(m.apply_update(UpdateKind::Delete, 1.0), Cost(4.0));
    }

    #[test]
    fn paper_lookup_costs() {
        let m = PageIoCostModel::default();
        assert_eq!(m.lookup(10.0), Cost(11.0));
        assert_eq!(m.lookup(1.0), Cost(2.0));
        assert_eq!(
            m.lookup(0.0),
            Cost(1.0),
            "a miss still reads the index page"
        );
    }

    #[test]
    fn cost_ordering_and_arithmetic() {
        assert!(Cost(2.0) < Cost(3.0));
        assert_eq!(Cost(2.0) + Cost(3.0), Cost(5.0));
        assert_eq!(Cost(2.0) * 3.0, Cost(6.0));
        assert_eq!(Cost(9.0).min(Cost(4.0)), Cost(4.0));
        assert!(Cost::INFINITY > Cost(1e300));
        assert!(!Cost::INFINITY.is_finite());
        let total: Cost = [Cost(1.0), Cost(2.0)].into_iter().sum();
        assert_eq!(total, Cost(3.0));
    }

    #[test]
    fn display_rounds_integers() {
        assert_eq!(Cost(11.0).to_string(), "11");
        assert_eq!(Cost(3.5).to_string(), "3.50");
        assert_eq!(Cost::INFINITY.to_string(), "∞");
    }

    #[test]
    fn model_is_monotone_on_samples() {
        let m = PageIoCostModel::default();
        for t in [0.0, 0.5, 1.0, 10.0, 1e6] {
            assert!(m.lookup(t).value() >= 0.0);
            assert!(m.scan(t).value() >= 0.0);
            for kind in [UpdateKind::Insert, UpdateKind::Delete, UpdateKind::Modify] {
                assert!(m.apply_update(kind, t).value() >= 0.0);
            }
        }
        assert!(m.lookup(5.0) <= m.lookup(6.0));
    }
}

//! A query-cost cache shared across optimizer worker threads.
//!
//! The view-set search prices the same posed queries under the same
//! markings over and over: two view sets that agree on the part of the DAG
//! a query's plan touches produce identical `(group, binding, marking)`
//! keys. A single process-wide cache lets every worker reuse every other
//! worker's pricing work. The map is sharded by key hash so concurrent
//! lookups rarely contend on the same lock.
//!
//! Correctness note: a cached entry is keyed by the *full* marking hash, so
//! sharing across view sets never changes a result — it only skips a
//! recomputation that would have produced the identical `Cost`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use spacetime_memo::GroupId;

use crate::model::Cost;

/// Cache key: (canonical queried group, binding columns, marking hash).
pub type QueryKey = (GroupId, Vec<usize>, u64);

const DEFAULT_SHARDS: usize = 16;

/// Sharded, thread-safe query-cost cache. Cloning is cheap (`Arc`); clones
/// share the same underlying shards.
#[derive(Clone)]
pub struct SharedQueryCache {
    shards: Arc<Vec<RwLock<HashMap<QueryKey, Cost>>>>,
}

impl Default for SharedQueryCache {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl SharedQueryCache {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with an explicit shard count (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        SharedQueryCache {
            shards: Arc::new((0..shards).map(|_| RwLock::new(HashMap::new())).collect()),
        }
    }

    fn shard(&self, key: &QueryKey) -> &RwLock<HashMap<QueryKey, Cost>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a priced query. Lock poisoning (a panicking writer) is
    /// treated as a miss rather than propagated.
    pub fn get(&self, key: &QueryKey) -> Option<Cost> {
        self.shard(key)
            .read()
            .ok()
            .and_then(|m| m.get(key).copied())
    }

    /// Record a priced query.
    pub fn insert(&self, key: QueryKey, cost: Cost) {
        if let Ok(mut m) = self.shard(&key).write() {
            m.insert(key, cost);
        }
    }

    /// Total cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().map(|m| m.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let cache = SharedQueryCache::new();
        let key: QueryKey = (GroupId(3), vec![0, 2], 0xDEADBEEF);
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), Cost(11.0));
        assert_eq!(cache.get(&key), Some(Cost(11.0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedQueryCache::with_shards(4);
        let b = a.clone();
        a.insert((GroupId(1), vec![], 7), Cost(2.0));
        assert_eq!(b.get(&(GroupId(1), vec![], 7)), Some(Cost(2.0)));
    }

    #[test]
    fn concurrent_inserts_land() {
        let cache = SharedQueryCache::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        cache.insert((GroupId((t * 100 + i) as u32), vec![], i), Cost(i as f64));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
    }
}

//! A query-cost cache shared across optimizer worker threads.
//!
//! Entries are keyed by `(canonical group, binding columns, narrowed
//! marking hash)`; any context that prices the same posed query under a
//! marking that agrees on the queried group's *reachable slice* can reuse
//! another's work. The map is sharded by key hash so concurrent lookups
//! rarely contend on the same lock.
//!
//! Correctness note: the narrowed hash covers `marked ∩ reachable(g)` —
//! exactly the memberships the costing recursion on `g` can test (see
//! `narrowed_marking_hash` in `crate::query`) — so sharing never changes a
//! result; it only skips a recomputation that would have produced the
//! identical `Cost`.
//!
//! Effectiveness note, courtesy of the [`stats`](SharedQueryCache::stats)
//! counters: the exhaustive search hands each view set to exactly one
//! worker (whose per-context local cache absorbs repeats), so a key hashing
//! the *entire* marking would never collide across workers and cross-worker
//! hits would measure ~0. Narrowing is what makes distinct view sets that
//! agree below the queried group land on the same entry, turning the
//! shared cache into real cross-worker reuse (`bench_search` asserts the
//! hit count is nonzero).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use spacetime_memo::GroupId;
use spacetime_obs::names as metric;

use crate::model::Cost;

/// Cache key: (canonical queried group, binding columns, narrowed marking
/// hash — see `narrowed_marking_hash` in `crate::query`).
pub type QueryKey = (GroupId, Vec<usize>, u64);

const DEFAULT_SHARDS: usize = 16;

struct Inner {
    shards: Vec<RwLock<HashMap<QueryKey, Cost>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Sharded, thread-safe query-cost cache. Cloning is cheap (`Arc`); clones
/// share the same underlying shards and hit/miss accounting.
#[derive(Clone)]
pub struct SharedQueryCache {
    inner: Arc<Inner>,
}

impl Default for SharedQueryCache {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl SharedQueryCache {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with an explicit shard count (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        SharedQueryCache {
            inner: Arc::new(Inner {
                shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    fn shard(&self, key: &QueryKey) -> &RwLock<HashMap<QueryKey, Cost>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.inner.shards[(h.finish() as usize) % self.inner.shards.len()]
    }

    /// Look up a priced query, counting the probe as a hit or miss. Lock
    /// poisoning (a panicking writer) is treated as a miss rather than
    /// propagated.
    pub fn get(&self, key: &QueryKey) -> Option<Cost> {
        let found = self
            .shard(key)
            .read()
            .ok()
            .and_then(|m| m.get(key).copied());
        spacetime_obs::counter_add(metric::QUERY_CACHE_LOOKUPS, 1);
        if found.is_some() {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            spacetime_obs::counter_add(metric::QUERY_CACHE_HITS, 1);
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
            spacetime_obs::counter_add(metric::QUERY_CACHE_MISSES, 1);
        }
        found
    }

    /// Record a priced query.
    pub fn insert(&self, key: QueryKey, cost: Cost) {
        if let Ok(mut m) = self.shard(&key).write() {
            m.insert(key, cost);
        }
    }

    /// `(hits, misses)` across every clone since creation. Lookups are
    /// `hits + misses` by construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }

    /// Total cached entries across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().map(|m| m.len()).unwrap_or(0))
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip() {
        let cache = SharedQueryCache::new();
        let key: QueryKey = (GroupId(3), vec![0, 2], 0xDEADBEEF);
        assert_eq!(cache.get(&key), None);
        cache.insert(key.clone(), Cost(11.0));
        assert_eq!(cache.get(&key), Some(Cost(11.0)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn clones_share_storage() {
        let a = SharedQueryCache::with_shards(4);
        let b = a.clone();
        a.insert((GroupId(1), vec![], 7), Cost(2.0));
        assert_eq!(b.get(&(GroupId(1), vec![], 7)), Some(Cost(2.0)));
        assert_eq!(a.stats(), (1, 0));
    }

    #[test]
    fn concurrent_inserts_land() {
        let cache = SharedQueryCache::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        cache.insert((GroupId((t * 100 + i) as u32), vec![], i), Cost(i as f64));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
    }

    #[test]
    fn stats_count_hits_and_misses_across_threads() {
        let cache = SharedQueryCache::new();
        cache.insert((GroupId(0), vec![], 0), Cost(1.0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        cache.get(&(GroupId(0), vec![], 0));
                        cache.get(&(GroupId(999), vec![], i));
                    }
                });
            }
        });
        assert_eq!(cache.stats(), (200, 200));
    }
}

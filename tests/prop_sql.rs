//! Robustness of the SQL front end: the parser must never panic — any
//! input either parses or returns a positioned error — and lowering of
//! parsed-but-nonsensical queries returns semantic errors, not panics.

use proptest::prelude::*;

use spacetime::sql::{parse_statement, parse_statements};

/// Strings biased toward SQL-looking fragments.
fn sqlish() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("SELECT".to_string()),
        Just("FROM".to_string()),
        Just("WHERE".to_string()),
        Just("GROUP".to_string()),
        Just("BY".to_string()),
        Just("HAVING".to_string()),
        Just("SUM".to_string()),
        Just("COUNT".to_string()),
        Just("CREATE".to_string()),
        Just("TABLE".to_string()),
        Just("VIEW".to_string()),
        Just("AS".to_string()),
        Just("AND".to_string()),
        Just("NOT".to_string()),
        Just("INSERT".to_string()),
        Just("VALUES".to_string()),
        Just("Emp".to_string()),
        Just("Dept".to_string()),
        Just("DName".to_string()),
        Just("Salary".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(",".to_string()),
        Just(";".to_string()),
        Just("*".to_string()),
        Just("=".to_string()),
        Just(">".to_string()),
        Just("<>".to_string()),
        Just("'str'".to_string()),
        Just("42".to_string()),
        Just("3.25".to_string()),
        Just("--comment\n".to_string()),
    ];
    prop::collection::vec(word, 0..24).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn parser_never_panics_on_sqlish_soup(input in sqlish()) {
        let _ = parse_statement(&input);
        let _ = parse_statements(&input);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(input in ".{0,80}") {
        let _ = parse_statement(&input);
    }

    #[test]
    fn lowering_never_panics(input in sqlish()) {
        use spacetime::sql::{lower_select, Statement};
        use spacetime::storage::{Catalog, DataType, Schema};
        let mut cat = Catalog::new();
        cat.create_table(
            "Emp",
            Schema::of_table(
                "Emp",
                &[("DName", DataType::Str), ("Salary", DataType::Int)],
            ),
        )
        .unwrap();
        if let Ok(Statement::Select(sel)) = parse_statement(&input) {
            let _ = lower_select(&sel, &cat);
        }
    }
}

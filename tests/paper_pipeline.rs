//! Cross-crate integration: the full SQL → DAG → optimizer → runtime
//! pipeline on the paper's examples, plus the theorems' end-to-end
//! consequences.

use spacetime::cost::{CostCtx, PageIoCostModel, TransactionType};
use spacetime::ivm::database::SqlOutcome;
use spacetime::ivm::{verify_all_views, Database, ViewSelection};
use spacetime::memo::{explore, Memo};
use spacetime::optimizer::{
    evaluate_view_set, greedy_add, optimal_view_set, shielding_optimize, EvalConfig, ViewSet,
};
use spacetime::sql::{lower_select, parse_statement, Statement};
use spacetime::storage::{tuple, IoMeter};
use spacetime_bench::scenarios::{join_chain, problem_dept, stacked_view};

/// The paper's view, defined via SQL, with a paper-shaped DAG behind it.
#[test]
fn sql_view_definition_round_trips_through_the_dag() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE Emp (EName VARCHAR PRIMARY KEY, DName VARCHAR, Salary INTEGER);
         CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER);",
    )
    .unwrap();
    let Statement::Select(sel) = parse_statement(
        "SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
         GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
    )
    .unwrap() else {
        panic!()
    };
    let tree = lower_select(&sel, &db.catalog).unwrap();
    let mut memo = Memo::new();
    let root = memo.insert_tree(&tree);
    memo.set_root(root);
    let stats = explore(&mut memo, &db.catalog).unwrap();
    assert!(
        stats.final_groups >= 6,
        "paper's DAG has ≥6 equivalence nodes"
    );
    assert!(memo.count_trees(memo.find(root)) >= 2);
}

/// Theorem 3.1 in effect: the exhaustive optimum beats or equals every
/// heuristic on several scenarios.
#[test]
fn exhaustive_dominates_heuristics_everywhere() {
    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    for s in [problem_dept(), join_chain(3), stacked_view(1)] {
        let ex = optimal_view_set(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
        let gr = greedy_add(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
        let sh = shielding_optimize(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
        assert!(ex.best.weighted <= gr.best.weighted + 1e-9);
        assert_eq!(ex.best.weighted, sh.best.weighted, "Theorem 4.1");
    }
}

/// The weighted-average objective responds to weights exactly as §3.5
/// prescribes: C(V) = Σ C(V,Tᵢ)·fᵢ / Σ fᵢ.
#[test]
fn weighting_shifts_the_objective_not_the_per_txn_costs() {
    let s = problem_dept();
    let model = PageIoCostModel::default();
    let config = EvalConfig::default();
    let set: ViewSet = [s.root].into_iter().collect();
    let mut ctx = CostCtx::new(&s.memo, &s.catalog, &model);
    let balanced = evaluate_view_set(&mut ctx, &s.catalog, s.root, &set, &s.txns, &config);
    let skewed_txns = vec![
        TransactionType::modify(">Emp", "Emp", 1.0).with_weight(3.0),
        TransactionType::modify(">Dept", "Dept", 1.0).with_weight(1.0),
    ];
    let skewed = evaluate_view_set(&mut ctx, &s.catalog, s.root, &set, &skewed_txns, &config);
    // Per-transaction totals identical; weighted average shifts toward >Emp.
    assert_eq!(
        balanced.txn_total(">Emp").unwrap(),
        skewed.txn_total(">Emp").unwrap()
    );
    assert_eq!(balanced.weighted, 12.0);
    assert_eq!(skewed.weighted, (13.0 * 3.0 + 11.0) / 4.0);
}

/// End-to-end SQL session exercising every statement kind.
#[test]
fn sql_session_smoke() {
    let mut db = Database::new();
    db.set_view_selection(ViewSelection::Greedy);
    db.execute_sql("CREATE TABLE Item (Id INTEGER PRIMARY KEY, Kind VARCHAR, Price INTEGER)")
        .unwrap();
    db.execute_sql("CREATE INDEX ON Item (Kind)").unwrap();
    db.execute_sql("INSERT INTO Item VALUES (1, 'book', 12), (2, 'book', 30), (3, 'lamp', 40)")
        .unwrap();
    db.execute_sql(
        "CREATE MATERIALIZED VIEW KindStats AS \
         SELECT Kind, COUNT(*) AS N, SUM(Price) AS Total FROM Item GROUP BY Kind",
    )
    .unwrap();
    // Check the initial materialization.
    let rows = match db.execute_sql("SELECT * FROM KindStats").unwrap() {
        SqlOutcome::Rows(r) => r,
        other => panic!("{other:?}"),
    };
    assert!(rows.contains(&tuple!["book", 2, 42]));
    // DML through every path.
    db.execute_sql("UPDATE Item SET Price = 15 WHERE Id = 1")
        .unwrap();
    db.execute_sql("DELETE FROM Item WHERE Id = 3").unwrap();
    db.execute_sql("INSERT INTO Item VALUES (4, 'lamp', 25)")
        .unwrap();
    let rows = match db.execute_sql("SELECT * FROM KindStats").unwrap() {
        SqlOutcome::Rows(r) => r,
        other => panic!("{other:?}"),
    };
    assert!(rows.contains(&tuple!["book", 2, 45]), "{rows}");
    assert!(rows.contains(&tuple!["lamp", 1, 25]), "{rows}");
    assert!(verify_all_views(&db).unwrap().is_empty());
}

/// Error paths across layers stay errors, not panics.
#[test]
fn pipeline_error_paths() {
    let mut db = Database::new();
    assert!(db.execute_sql("SELECT * FROM Nope").is_err());
    assert!(db.execute_sql("CREATE TABLE T (x WIBBLE)").is_err());
    db.execute_sql("CREATE TABLE T (x INTEGER)").unwrap();
    assert!(db.execute_sql("CREATE TABLE T (x INTEGER)").is_err());
    assert!(db.execute_sql("SELECT y FROM T").is_err());
    assert!(db
        .execute_sql("DELETE FROM T WHERE nonexistent = 1")
        .is_err());
    // Deleting a tuple that is not there is a storage error.
    db.execute_sql("INSERT INTO T VALUES (1)").unwrap();
    assert!(db
        .apply_delta("T", spacetime::delta::Delta::delete(tuple![7], 1))
        .is_err());
}

/// A view over a single relation needs no queries at all when its only
/// aggregate is self-maintainable — the degenerate best case.
#[test]
fn self_maintainable_view_needs_no_queries() {
    let mut db = Database::new();
    db.set_view_selection(ViewSelection::RootOnly);
    db.execute_sql("CREATE TABLE E (Name VARCHAR PRIMARY KEY, D VARCHAR, S INTEGER)")
        .unwrap();
    db.execute_sql("CREATE INDEX ON E (D)").unwrap();
    let mut io = IoMeter::new();
    for i in 0..50 {
        db.catalog
            .table_mut("E")
            .unwrap()
            .relation
            .insert(
                tuple![format!("e{i}"), format!("d{}", i % 5), 100_i64],
                1,
                &mut io,
            )
            .unwrap();
    }
    db.catalog.table_mut("E").unwrap().analyze();
    db.execute_sql("CREATE MATERIALIZED VIEW SumOfSals AS SELECT D, SUM(S) AS T FROM E GROUP BY D")
        .unwrap();
    let report = match db
        .execute_sql("UPDATE E SET S = 120 WHERE Name = 'e7'")
        .unwrap()
    {
        SqlOutcome::Updated { report, .. } => report,
        other => panic!("{other:?}"),
    };
    // The root (SumOfSals) is its own aggregate: the old group row comes
    // from the materialization itself, so zero query I/O is posed.
    assert_eq!(report.query_io.total(), 0, "{:?}", report.query_io);
    assert!(verify_all_views(&db).unwrap().is_empty());
}

//! Property-based checks on the cost layer: Theorem 3.1's precondition is
//! a *monotonic* cost model, so the model's primitives must be
//! non-negative, composition must be additive, and adding materialized
//! views must never make a query more expensive (the optimizer only uses
//! marked nodes when they help).

use proptest::prelude::*;
use std::collections::BTreeSet;

use spacetime::cost::{Cost, CostCtx, CostModel, Marking, PageIoCostModel, UpdateKind};
use spacetime::optimizer::{optimal_view_set, EvalConfig};
use spacetime_bench::scenarios::{join_chain, problem_dept};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Primitive costs are non-negative and monotone in their size inputs.
    #[test]
    fn model_primitives_monotone(t1 in 0.0f64..1e7, t2 in 0.0f64..1e7) {
        let m = PageIoCostModel::default();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(m.lookup(lo) <= m.lookup(hi));
        prop_assert!(m.scan(lo) <= m.scan(hi));
        for kind in [UpdateKind::Insert, UpdateKind::Delete, UpdateKind::Modify] {
            prop_assert!(m.apply_update(kind, lo) <= m.apply_update(kind, hi));
            prop_assert!(m.apply_update(kind, lo) >= Cost::ZERO);
        }
    }

    /// Query costs are finite and non-negative for every (group, single
    /// binding column) pair of the paper DAG, under random markings; and
    /// marking MORE nodes never increases any query's cost.
    #[test]
    fn marking_more_never_hurts(mask in 0u32..256) {
        let s = problem_dept();
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.catalog, &model);
        let groups: Vec<_> = s.memo.groups().collect();
        let marked: Marking = groups
            .iter()
            .enumerate()
            .filter(|(i, g)| mask & (1 << (i % 8)) != 0 && !s.memo.is_leaf(**g))
            .map(|(_, &g)| s.memo.find(g))
            .collect();
        let empty = Marking::new();
        for &g in &groups {
            let arity = s.memo.schema(g).arity();
            for col in 0..arity.min(3) {
                let with = ctx.query_cost(g, &[col], &marked);
                let without = ctx.query_cost(g, &[col], &empty);
                prop_assert!(with.value() >= 0.0);
                prop_assert!(without.is_finite());
                prop_assert!(
                    with <= without,
                    "marking increased cost at {g} col {col}: {with} > {without}"
                );
            }
        }
    }

    /// Estimates are sane on random chains: cardinalities non-negative,
    /// distinct counts within [1, card] (for non-empty), delta sizes
    /// bounded by join fanout products.
    #[test]
    fn estimates_are_sane(n in 2usize..4) {
        let s = join_chain(n);
        let model = PageIoCostModel::default();
        let mut ctx = CostCtx::new(&s.memo, &s.catalog, &model);
        for g in s.memo.groups() {
            let card = ctx.card(g);
            prop_assert!(card >= 0.0 && card.is_finite());
            for col in 0..s.memo.schema(g).arity() {
                let d = ctx.distinct(g, col);
                prop_assert!(d >= 1.0);
                prop_assert!(d <= card.max(1.0) + 1e-9, "distinct {d} > card {card}");
            }
            for txn in &s.txns {
                for u in &txn.updates {
                    let delta = ctx.delta_for(g, u);
                    prop_assert!(delta.size >= 0.0 && delta.size.is_finite());
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Branch-and-bound pruning never changes the outcome: for any top-K
    /// size and worker count, the pruned search returns the same winner
    /// (bit-identical weighted cost) and the same retained top-K as the
    /// unpruned search. Sound because the per-transaction partial sums
    /// are monotone: once Σ wᵢ·cᵢ over a prefix exceeds the K-th best
    /// weighted total, the full total can only be larger.
    #[test]
    fn pruning_never_changes_the_winner(
        top_k in 1usize..9,
        parallelism in 1usize..5,
        which in 0usize..2,
    ) {
        let s = if which == 0 { problem_dept() } else { join_chain(3) };
        let model = PageIoCostModel::default();
        let base = EvalConfig {
            top_k,
            parallelism,
            max_tracks: 256,
            prune: false,
            ..EvalConfig::default()
        };
        let unpruned = optimal_view_set(&s.memo, &s.catalog, &model, s.root, &s.txns, &base);
        let pruned = optimal_view_set(
            &s.memo,
            &s.catalog,
            &model,
            s.root,
            &s.txns,
            &EvalConfig { prune: true, ..base },
        );
        prop_assert_eq!(&pruned.best.view_set, &unpruned.best.view_set);
        prop_assert_eq!(
            pruned.best.weighted.to_bits(),
            unpruned.best.weighted.to_bits()
        );
        prop_assert_eq!(pruned.sets_considered, unpruned.sets_considered);
        prop_assert_eq!(pruned.evaluated.len(), unpruned.evaluated.len());
        for (p, u) in pruned.evaluated.iter().zip(&unpruned.evaluated) {
            prop_assert_eq!(&p.view_set, &u.view_set);
            prop_assert_eq!(p.weighted.to_bits(), u.weighted.to_bits());
        }
    }
}

/// The §3.4 monotonicity statement itself: the cost of evaluating a tree
/// is at least the cost of evaluating any subtree (full-evaluation costs
/// are additive over children).
#[test]
fn full_eval_cost_dominates_subtrees() {
    let s = problem_dept();
    let model = PageIoCostModel::default();
    let mut ctx = CostCtx::new(&s.memo, &s.catalog, &model);
    let empty = Marking::new();
    let mut checked = 0;
    let groups: BTreeSet<_> = s.memo.groups().collect();
    for &g in &groups {
        let parent_cost = ctx.full_eval_cost(g, &empty);
        for op in s.memo.group_ops(g) {
            for child in s.memo.op_children(op) {
                // Only ops that realize the parent's minimum are bounded
                // individually, but every child's cost is a lower bound on
                // *some* alternative; the safe universal check:
                let child_cost = ctx.full_eval_cost(child, &empty);
                if s.memo.group_ops(g).len() == 1 {
                    assert!(
                        parent_cost >= child_cost,
                        "single-alternative parent cheaper than child"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "at least one single-alternative node checked");
}

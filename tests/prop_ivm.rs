//! Property-based soundness of incremental maintenance: for random views
//! over random data and random update sequences, the incrementally
//! maintained state must equal recomputation from scratch — with and
//! without optimizer-chosen auxiliary views.

use proptest::prelude::*;

use spacetime::algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ExprTree, ScalarExpr};
use spacetime::delta::Delta;
use spacetime::ivm::{verify_all_views, Database, ViewSelection};
use spacetime::storage::{tuple, DataType, IoMeter, Schema, Tuple};

/// Which view shape to build.
#[derive(Debug, Clone, Copy)]
enum ViewShape {
    SelectOnly,
    Join,
    AggOverBase,
    AggOverJoin,
    DistinctProject,
    JoinWithResidual,
}

#[derive(Debug, Clone, Copy)]
enum UpdateOp {
    Insert { table: u8, k: i64, v: i64 },
    DeleteNth { table: u8, nth: u8 },
    ModifyNth { table: u8, nth: u8, new_v: i64 },
}

fn arbitrary_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, 0i64..40), 0..12)
}

fn arbitrary_updates() -> impl Strategy<Value = Vec<UpdateOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..2, 0i64..6, 0i64..40).prop_map(|(table, k, v)| UpdateOp::Insert { table, k, v }),
            (0u8..2, any::<u8>()).prop_map(|(table, nth)| UpdateOp::DeleteNth { table, nth }),
            (0u8..2, any::<u8>(), 0i64..40).prop_map(|(table, nth, new_v)| UpdateOp::ModifyNth {
                table,
                nth,
                new_v
            }),
        ],
        1..8,
    )
}

fn view_shape() -> impl Strategy<Value = ViewShape> {
    prop_oneof![
        Just(ViewShape::SelectOnly),
        Just(ViewShape::Join),
        Just(ViewShape::AggOverBase),
        Just(ViewShape::AggOverJoin),
        Just(ViewShape::DistinctProject),
        Just(ViewShape::JoinWithResidual),
    ]
}

fn build_view(db: &Database, shape: ViewShape) -> ExprTree {
    let t1 = ExprNode::scan(&db.catalog, "T1").unwrap();
    let t2 = ExprNode::scan(&db.catalog, "T2").unwrap();
    match shape {
        ViewShape::SelectOnly => ExprNode::select(
            t1,
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(20)),
        )
        .unwrap(),
        ViewShape::Join => ExprNode::join_on(t1, t2, &[("T1.k", "T2.k")]).unwrap(),
        ViewShape::AggOverBase => ExprNode::aggregate(
            t1,
            vec![0],
            vec![
                AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s"),
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Max, ScalarExpr::col(1), "m"),
            ],
        )
        .unwrap(),
        ViewShape::AggOverJoin => {
            let j = ExprNode::join_on(t1, t2, &[("T1.k", "T2.k")]).unwrap();
            ExprNode::aggregate(
                j,
                vec![0],
                vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s")],
            )
            .unwrap()
        }
        ViewShape::DistinctProject => {
            let p = ExprNode::project_cols(t1, &[0]).unwrap();
            ExprNode::distinct(p).unwrap()
        }
        ViewShape::JoinWithResidual => {
            let j = ExprNode::join_on(t1, t2, &[("T1.k", "T2.k")]).unwrap();
            ExprNode::select(
                j,
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::col(3)),
            )
            .unwrap()
        }
    }
}

fn setup_db(
    rows1: &[(i64, i64)],
    rows2: &[(i64, i64)],
    shape: ViewShape,
    selection: ViewSelection,
) -> Database {
    let mut db = Database::new();
    db.set_view_selection(selection);
    for name in ["T1", "T2"] {
        db.catalog
            .create_table(
                name,
                Schema::of_table(name, &[("k", DataType::Int), ("v", DataType::Int)]),
            )
            .unwrap();
        db.catalog.create_index(name, &["k"]).unwrap();
    }
    let mut io = IoMeter::new();
    for &(k, v) in rows1 {
        db.catalog
            .table_mut("T1")
            .unwrap()
            .relation
            .insert(tuple![k, v], 1, &mut io)
            .unwrap();
    }
    for &(k, v) in rows2 {
        db.catalog
            .table_mut("T2")
            .unwrap()
            .relation
            .insert(tuple![k, v], 1, &mut io)
            .unwrap();
    }
    db.catalog.table_mut("T1").unwrap().analyze();
    db.catalog.table_mut("T2").unwrap().analyze();
    let tree = build_view(&db, shape);
    db.create_materialized_view("V", tree).unwrap();
    db
}

/// Resolve an abstract update op against current table contents.
fn resolve(db: &Database, op: UpdateOp) -> Option<(String, Delta)> {
    let table_name = |t: u8| if t == 0 { "T1" } else { "T2" };
    match op {
        UpdateOp::Insert { table, k, v } => Some((
            table_name(table).to_string(),
            Delta::insert(tuple![k, v], 1),
        )),
        UpdateOp::DeleteNth { table, nth } => {
            let name = table_name(table);
            let data = db.catalog.table(name).ok()?.relation.data().sorted();
            if data.is_empty() {
                return None;
            }
            let (t, _) = &data[nth as usize % data.len()];
            Some((name.to_string(), Delta::delete(t.clone(), 1)))
        }
        UpdateOp::ModifyNth { table, nth, new_v } => {
            let name = table_name(table);
            let data = db.catalog.table(name).ok()?.relation.data().sorted();
            if data.is_empty() {
                return None;
            }
            let (t, _) = &data[nth as usize % data.len()];
            let new: Tuple = tuple![t.get(0).unwrap().clone(), new_v];
            if *t == new {
                return None;
            }
            Some((name.to_string(), Delta::modify(t.clone(), new, 1)))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Incremental == recompute, root-only materialization.
    #[test]
    fn ivm_matches_recompute_root_only(
        rows1 in arbitrary_rows(),
        rows2 in arbitrary_rows(),
        shape in view_shape(),
        updates in arbitrary_updates(),
    ) {
        let mut db = setup_db(&rows1, &rows2, shape, ViewSelection::RootOnly);
        for op in updates {
            if let Some((table, delta)) = resolve(&db, op) {
                db.apply_delta(&table, delta).unwrap();
                let mismatches = verify_all_views(&db).unwrap();
                prop_assert!(mismatches.is_empty(), "{mismatches:?}");
            }
        }
    }

    /// Incremental == recompute with optimizer-chosen auxiliary views —
    /// the auxiliary materializations must stay exact too.
    #[test]
    fn ivm_matches_recompute_with_aux_views(
        rows1 in arbitrary_rows(),
        rows2 in arbitrary_rows(),
        shape in view_shape(),
        updates in arbitrary_updates(),
    ) {
        let mut db = setup_db(&rows1, &rows2, shape, ViewSelection::Greedy);
        for op in updates {
            if let Some((table, delta)) = resolve(&db, op) {
                db.apply_delta(&table, delta).unwrap();
                let mismatches = verify_all_views(&db).unwrap();
                prop_assert!(mismatches.is_empty(), "{mismatches:?}");
            }
        }
    }
}

//! Property-based invariants of the expression DAG:
//!
//! * every tree extracted from an explored memo evaluates to the same bag
//!   (rules preserve semantics);
//! * hash-consing never duplicates `(operator, children)`;
//! * tree counting is consistent with extraction;
//! * articulation nodes agree with brute-force node-removal.

use proptest::prelude::*;
use std::collections::BTreeSet;

use spacetime::algebra::eval_uncharged;
use spacetime::algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ExprTree, ScalarExpr};
use spacetime::memo::{articulation_groups, descendant_groups, explore, Memo};
use spacetime::storage::{tuple, Catalog, DataType, IoMeter, Schema};

/// A small random database over tables A, B, C with shared key domains.
fn catalog_with_data(rows: &[Vec<(i64, i64)>; 3], keyed: [bool; 3]) -> Catalog {
    let mut cat = Catalog::new();
    let mut io = IoMeter::new();
    for (i, name) in ["A", "B", "C"].iter().enumerate() {
        let name = *name;
        cat.create_table(
            name,
            Schema::of_table(name, &[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
        cat.create_index(name, &["k"]).unwrap();
        let mut seen_keys = BTreeSet::new();
        for &(k, v) in &rows[i] {
            // When the table must be keyed on k, keep only one row per key.
            if keyed[i] && !seen_keys.insert(k) {
                continue;
            }
            cat.table_mut(name)
                .unwrap()
                .relation
                .insert(tuple![k, v], 1, &mut io)
                .unwrap();
        }
        if keyed[i] {
            cat.declare_key(name, &["k"]).unwrap();
        }
        cat.table_mut(name).unwrap().analyze();
    }
    cat
}

/// Random view shapes over the three tables.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Chain2,
    Chain3,
    SelectJoin,
    AggJoin,
    SelectAggJoin,
}

fn build(cat: &Catalog, shape: Shape) -> ExprTree {
    let a = ExprNode::scan(cat, "A").unwrap();
    let b = ExprNode::scan(cat, "B").unwrap();
    let c = ExprNode::scan(cat, "C").unwrap();
    let ab = ExprNode::join_on(a.clone(), b.clone(), &[("A.k", "B.k")]).unwrap();
    match shape {
        Shape::Chain2 => ab,
        Shape::Chain3 => ExprNode::join_on(ab, c, &[("A.k", "C.k")]).unwrap(),
        Shape::SelectJoin => ExprNode::select(
            ab,
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(10)),
        )
        .unwrap(),
        Shape::AggJoin => ExprNode::aggregate(
            ab,
            vec![0],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s")],
        )
        .unwrap(),
        Shape::SelectAggJoin => {
            let agg = ExprNode::aggregate(
                ab,
                vec![0],
                vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(1), "s")],
            )
            .unwrap();
            ExprNode::select(
                agg,
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(1), ScalarExpr::lit(5)),
            )
            .unwrap()
        }
    }
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..5, 0i64..30), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_extracted_trees_evaluate_equal(
        rows_a in rows_strategy(),
        rows_b in rows_strategy(),
        rows_c in rows_strategy(),
        keyed_b in any::<bool>(),
        shape in prop_oneof![
            Just(Shape::Chain2), Just(Shape::Chain3), Just(Shape::SelectJoin),
            Just(Shape::AggJoin), Just(Shape::SelectAggJoin)
        ],
    ) {
        let cat = catalog_with_data(&[rows_a, rows_b, rows_c], [false, keyed_b, false]);
        let tree = build(&cat, shape);
        let reference = eval_uncharged(&tree, &cat).unwrap();
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let trees = memo.extract_trees(memo.find(root), 40);
        prop_assert!(!trees.is_empty());
        for t in &trees {
            let got = eval_uncharged(t, &cat).unwrap();
            prop_assert_eq!(&got, &reference, "tree differs:\n{}", t.render());
        }
    }

    #[test]
    fn memo_structural_invariants(
        shape in prop_oneof![
            Just(Shape::Chain2), Just(Shape::Chain3), Just(Shape::SelectJoin),
            Just(Shape::AggJoin), Just(Shape::SelectAggJoin)
        ],
        keyed_b in any::<bool>(),
    ) {
        let cat = catalog_with_data(&[vec![], vec![], vec![]], [false, keyed_b, true]);
        let tree = build(&cat, shape);
        let mut memo = Memo::new();
        let root = memo.insert_tree(&tree);
        memo.set_root(root);
        explore(&mut memo, &cat).unwrap();
        let root = memo.find(root);

        // No two live ops share (operator, canonical children).
        let mut seen = BTreeSet::new();
        for op in memo.all_op_ids() {
            if !memo.op(op).alive {
                continue;
            }
            let key = (format!("{:?}", memo.op(op).op), memo.op_children(op));
            prop_assert!(seen.insert(key), "duplicate live operation node");
        }

        // Tree count ≥ extracted tree count at a small limit; extraction
        // never repeats a tree.
        let count = memo.count_trees(root);
        let trees = memo.extract_trees(root, 32);
        prop_assert!(count as usize >= trees.len().min(32));
        let rendered: BTreeSet<String> = trees.iter().map(|t| t.render()).collect();
        prop_assert_eq!(rendered.len(), trees.len(), "duplicate extracted trees");

        // Articulation nodes vs brute-force group-connectivity check.
        let arts = articulation_groups(&memo, root);
        let scope = descendant_groups(&memo, root);
        for &g in &scope {
            if g == root {
                continue;
            }
            let connected = {
                let mut seen = BTreeSet::new();
                let mut stack = vec![root];
                while let Some(cur) = stack.pop() {
                    if cur == g || !seen.insert(cur) {
                        continue;
                    }
                    for op in memo.group_ops(cur) {
                        for ch in memo.op_children(op) {
                            stack.push(ch);
                        }
                    }
                    for &other in &scope {
                        if other == g {
                            continue;
                        }
                        for op in memo.group_ops(other) {
                            if memo.op_children(op).contains(&cur) {
                                stack.push(other);
                            }
                        }
                    }
                }
                scope.iter().filter(|&&x| x != g).all(|x| seen.contains(x))
            };
            prop_assert_eq!(!connected, arts.contains(&g), "articulation mismatch at {}", g);
        }
    }
}

//! Determinism of the parallel view-set search engine.
//!
//! Theorem 3.1's exhaustive search is only trustworthy if its parallel,
//! cache-sharing, branch-and-bound implementation returns *exactly* the
//! serial answer: same best set, bit-identical weighted cost, and the
//! same retained top-K, regardless of worker count, thread scheduling,
//! or how many evaluations pruning abandoned.

use spacetime::algebra::{AggExpr, AggFunc, CmpOp, ExprNode, ScalarExpr};
use spacetime::cost::PageIoCostModel;
use spacetime::memo::{explore, Memo};
use spacetime::optimizer::{
    optimal_view_set, optimal_view_set_multi, optimal_view_set_over, EvalConfig,
};
use spacetime_bench::scenarios::{problem_dept, scaling_workload};
use spacetime_optimizer::candidate_groups;
use spacetime_optimizer::OptimizeOutcome;

fn assert_identical(serial: &OptimizeOutcome, other: &OptimizeOutcome, what: &str) {
    assert_eq!(
        serial.best.view_set, other.best.view_set,
        "{what}: best sets differ"
    );
    assert_eq!(
        serial.best.weighted.to_bits(),
        other.best.weighted.to_bits(),
        "{what}: best weighted costs differ ({} vs {})",
        serial.best.weighted,
        other.best.weighted
    );
    assert_eq!(
        serial.sets_considered, other.sets_considered,
        "{what}: sets_considered differs"
    );
    assert_eq!(
        serial.evaluated.len(),
        other.evaluated.len(),
        "{what}: top-K lengths differ"
    );
    for (i, (s, o)) in serial.evaluated.iter().zip(&other.evaluated).enumerate() {
        assert_eq!(s.view_set, o.view_set, "{what}: top-K entry {i} differs");
        assert_eq!(
            s.weighted.to_bits(),
            o.weighted.to_bits(),
            "{what}: top-K entry {i} costs differ"
        );
    }
}

/// Configurations to pit against the serial baseline: extra workers with
/// and without pruning (worker counts beyond the core count still
/// exercise work-stealing interleavings).
fn variants(base: EvalConfig) -> Vec<(&'static str, EvalConfig)> {
    vec![
        (
            "parallel(2)",
            EvalConfig {
                parallelism: 2,
                prune: false,
                ..base
            },
        ),
        (
            "parallel(8)",
            EvalConfig {
                parallelism: 8,
                prune: false,
                ..base
            },
        ),
        (
            "serial+prune",
            EvalConfig {
                parallelism: 1,
                prune: true,
                ..base
            },
        ),
        (
            "parallel(8)+prune",
            EvalConfig {
                parallelism: 8,
                prune: true,
                ..base
            },
        ),
    ]
}

#[test]
fn problem_dept_serial_vs_parallel_identical() {
    let s = problem_dept();
    let model = PageIoCostModel::default();
    let base = EvalConfig {
        parallelism: 1,
        prune: false,
        ..EvalConfig::default()
    };
    let serial = optimal_view_set(&s.memo, &s.catalog, &model, s.root, &s.txns, &base);
    // §3.6 golden answer: materializing SumOfSals alone wins at 3.5.
    assert_eq!(serial.best.weighted, 3.5);
    for (name, config) in variants(base) {
        let out = optimal_view_set(&s.memo, &s.catalog, &model, s.root, &s.txns, &config);
        assert_identical(&serial, &out, name);
    }
}

#[test]
fn multi_view_serial_vs_parallel_identical() {
    // §6's multi-root setting: ProblemDept plus a second view sharing the
    // SumOfSals subexpression, optimized jointly.
    let s = problem_dept();
    let emp = ExprNode::scan(&s.catalog, "Emp").unwrap();
    let agg = ExprNode::aggregate(
        emp,
        vec![1],
        vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(2), "SalSum")],
    )
    .unwrap();
    let v2_tree = ExprNode::select(
        agg,
        ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(0)),
    )
    .unwrap();
    let mut memo = Memo::new();
    let v1 = memo.insert_tree(&s.tree);
    let v2 = memo.insert_tree(&v2_tree);
    memo.set_root(v1);
    explore(&mut memo, &s.catalog).unwrap();
    let (v1, v2) = (memo.find(v1), memo.find(v2));
    assert_ne!(v1, v2);

    let model = PageIoCostModel::default();
    let base = EvalConfig {
        parallelism: 1,
        prune: false,
        ..EvalConfig::default()
    };
    let serial = optimal_view_set_multi(
        &memo,
        &s.catalog,
        &model,
        &[v1, v2],
        &s.txns,
        &base,
        Some(2),
    );
    for (name, config) in variants(base) {
        let out = optimal_view_set_multi(
            &memo,
            &s.catalog,
            &model,
            &[v1, v2],
            &s.txns,
            &config,
            Some(2),
        );
        assert_identical(&serial, &out, name);
    }
}

#[test]
fn scaling_workload_serial_vs_parallel_identical() {
    // The wide E-PAR scenario (28 candidates, 4 skewed transactions),
    // restricted to one extra view so the test stays quick.
    let s = scaling_workload();
    let model = PageIoCostModel::default();
    let base = EvalConfig {
        parallelism: 1,
        prune: false,
        max_tracks: 64,
        ..EvalConfig::default()
    };
    let candidates = candidate_groups(&s.memo, s.root);
    let run = |config: &EvalConfig| {
        optimal_view_set_over(
            &s.memo,
            &s.catalog,
            &model,
            s.root,
            &candidates,
            &s.txns,
            config,
            Some(1),
        )
    };
    let serial = run(&base);
    for (name, config) in variants(base) {
        assert_identical(&serial, &run(&config), name);
    }
}

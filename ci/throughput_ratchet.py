#!/usr/bin/env python3
"""Throughput and allocation ratchet for the IVM data-plane smoke benchmark.

Compares a fresh ``BENCH_ivm.json`` smoke run against the committed smoke
baseline (``ci/bench_ivm_smoke_baseline.json``) across every scenario
(paper / scaling / wide) and every propagation mode present in both files
(per_key / batched / parallel / fused), and fails if any ``txns_per_sec``
fell below a generous fraction of the baseline. The tolerance is
deliberately loose: smoke runs last milliseconds and CI hardware differs
from the machine that recorded the baseline, so this is a guard against
order-of-magnitude regressions (e.g. reintroducing per-probe allocation
or deep-clone commits on the data plane), not a precision benchmark.

``allocs_per_txn`` is only present in runs built with the counting
allocator (``--features alloc-stats``); both files may omit it. With
``--alloc-check`` the ratchet additionally requires the fresh run's
*fused* ``allocs_per_txn`` to sit strictly below the committed *per_key*
baseline in every scenario — allocation counts are workload-determined,
not hardware-determined, so this is a tight assertion that the arena and
fused kernels actually absorb hot-path allocation.

The ``serve`` section (the multi-client sharded-scheduler benchmark) is
ratcheted the same way when both files carry it: sustained ``txns_per_sec``
at shard counts 1 and 4 must stay above the floor, and the run's
hardware-independent determinism flags (``replay_identical`` per point,
``union_matches_unsharded``) must all be true. Baselines predating the
serve benchmark are skipped rather than forcing a flag-day refresh.

The ``wal`` section (present when the bench was built with the
``durability`` feature, the bench crate's default) is checked against an
*intra-run* floor rather than the committed baseline: WAL-on throughput
must stay within 25% of the same run's in-memory pass
(``throughput_ratio >= 0.75``), recovery must have been bit-identical,
and checkpointed recovery must never replay more than full-log recovery.
Being a same-host same-run ratio, this floor is immune to the hardware
drift the loose cross-baseline tolerance exists for.

On failure the ratchet additionally prints a per-scenario delta table —
every scenario x mode (and serve point) side by side with the baseline
and the percentage change — so the offending regression is readable at a
glance without re-running anything.

With ``--history <bench_history.jsonl>`` the ratchet additionally prints
a trend table over the last ``HISTORY_RUNS`` appended runs (the bench
binary appends one line per run): per-scenario batched/fused and serve
throughput side by side, oldest first, so drift that stays above the
loose floor is still visible across commits. The history file is
informational — a missing or malformed file prints a note and never
fails the ratchet.

Usage: throughput_ratchet.py <fresh.json> <baseline.json> [min_ratio]
       [--alloc-check] [--history <bench_history.jsonl>]
"""

import json
import sys

MODES = ("per_key", "batched", "parallel", "fused")
SERVE_SHARD_FLOORS = (1, 4)
# Trend-table depth for --history.
HISTORY_RUNS = 10
# WAL-on serve throughput must stay within 25% of the in-memory pass.
WAL_RATIO_FLOOR = 0.75


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not doc.get("smoke", False):
        sys.exit(f"{path}: not a smoke run; the ratchet compares smoke against smoke")
    return doc


def throughput_ratchet(fresh, base, min_ratio):
    failures = []
    for name, b in sorted(base.items()):
        if name not in fresh:
            failures.append(f"scenario {name!r} missing from fresh run")
            continue
        for mode in MODES:
            if mode not in b or mode not in fresh[name]:
                # Older baselines predate the fused mode; skip rather
                # than force a flag-day baseline refresh.
                continue
            got = fresh[name][mode]["txns_per_sec"]
            want = b[mode]["txns_per_sec"]
            ratio = got / want if want else float("inf")
            status = "ok" if ratio >= min_ratio else "REGRESSED"
            print(
                f"{name:10} {mode:9} {got:>10.1f} txn/s  baseline {want:>10.1f}"
                f"  ratio {ratio:5.2f}  (floor {min_ratio})  {status}"
            )
            if ratio < min_ratio:
                failures.append(
                    f"scenario {name!r} mode {mode!r}: {got:.1f} txn/s is below "
                    f"{min_ratio} x baseline {want:.1f}"
                )
    return failures


def alloc_ratchet(fresh, base):
    failures = []
    for name, b in sorted(base.items()):
        if name not in fresh:
            failures.append(f"scenario {name!r} missing from fresh run")
            continue
        want = b.get("per_key", {}).get("allocs_per_txn")
        got = fresh[name].get("fused", {}).get("allocs_per_txn")
        if want is None:
            failures.append(
                f"scenario {name!r}: baseline has no per_key allocs_per_txn "
                "(refresh it from an --features alloc-stats build)"
            )
            continue
        if got is None:
            failures.append(
                f"scenario {name!r}: fresh run has no fused allocs_per_txn "
                "(was it built with --features alloc-stats?)"
            )
            continue
        status = "ok" if got < want else "REGRESSED"
        print(
            f"{name:10} fused {got:>10.1f} allocs/txn  per_key baseline "
            f"{want:>10.1f}  {status}"
        )
        if got >= want:
            failures.append(
                f"scenario {name!r}: fused {got:.1f} allocs/txn is not strictly "
                f"below the per_key baseline {want:.1f}"
            )
    return failures


def serve_ratchet(fresh_doc, base_doc, min_ratio):
    base = base_doc.get("serve")
    if base is None:
        print("serve: baseline has no serve section; skipping")
        return []
    fresh = fresh_doc.get("serve")
    if fresh is None:
        return ["fresh run has no serve section but the baseline does"]
    failures = []
    base_pts = {p["shards"]: p for p in base["points"]}
    fresh_pts = {p["shards"]: p for p in fresh["points"]}
    for shards in SERVE_SHARD_FLOORS:
        if shards not in base_pts:
            continue
        if shards not in fresh_pts:
            failures.append(f"serve point at {shards} shard(s) missing from fresh run")
            continue
        got = fresh_pts[shards]["txns_per_sec"]
        want = base_pts[shards]["txns_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= min_ratio else "REGRESSED"
        print(
            f"{'serve':10} {f'{shards}shard':9} {got:>10.1f} txn/s  baseline {want:>10.1f}"
            f"  ratio {ratio:5.2f}  (floor {min_ratio})  {status}"
        )
        if ratio < min_ratio:
            failures.append(
                f"serve at {shards} shard(s): {got:.1f} txn/s is below "
                f"{min_ratio} x baseline {want:.1f}"
            )
    # Determinism flags are workload-determined, not hardware-determined:
    # any false is a correctness regression, not noise.
    for p in fresh["points"]:
        if not p.get("replay_identical", False):
            failures.append(
                f"serve at {p['shards']} shard(s): replay_identical is false"
            )
    if not fresh.get("union_matches_unsharded", False):
        failures.append("serve: union_matches_unsharded is false")
    return failures


def wal_ratchet(fresh_doc):
    wal = fresh_doc.get("wal")
    if not fresh_doc.get("durability_compiled", False) or wal is None:
        print("wal: durability not compiled into this run; skipping")
        return []
    failures = []
    ratio = wal["throughput_ratio"]
    status = "ok" if ratio >= WAL_RATIO_FLOOR else "REGRESSED"
    print(
        f"{'wal':10} {'on/off':9} {wal['wal_on_txns_per_sec']:>10.1f} txn/s  "
        f"in-memory {wal['wal_off_txns_per_sec']:>10.1f}"
        f"  ratio {ratio:5.2f}  (floor {WAL_RATIO_FLOOR})  {status}"
    )
    if ratio < WAL_RATIO_FLOOR:
        failures.append(
            f"wal: durable throughput ratio {ratio:.3f} is below the "
            f"{WAL_RATIO_FLOOR} floor (WAL tax exceeds 25%)"
        )
    if not wal.get("recovered_identical", False):
        failures.append("wal: recovery was not bit-identical to the in-memory run")
    # Checkpoints exist to shrink the replayed tail: any checkpointed
    # recovery replaying more than full-log recovery is a policy bug.
    points = wal.get("recovery", [])
    full = next((p for p in points if p["checkpoint_every_txns"] == 0), None)
    for p in points:
        if (
            full is not None
            and p["checkpoint_every_txns"]
            and p["replayed_txns"] > full["replayed_txns"]
        ):
            failures.append(
                f"wal: checkpoint every {p['checkpoint_every_txns']} txns "
                f"replayed {p['replayed_txns']} txns, more than the "
                f"uncheckpointed {full['replayed_txns']}"
            )
    return failures


def delta_table(fresh, base, fresh_doc, base_doc):
    """Every scenario x mode (and serve point) against the baseline, with
    the percentage change — printed when the ratchet fails so the
    regression is readable without re-running."""
    rows = []
    for name in sorted(set(base) | set(fresh)):
        for mode in MODES:
            got = fresh.get(name, {}).get(mode, {}).get("txns_per_sec")
            want = base.get(name, {}).get(mode, {}).get("txns_per_sec")
            rows.append((f"{name}/{mode}", got, want))
    base_pts = {p["shards"]: p for p in base_doc.get("serve", {}).get("points", [])}
    fresh_pts = {p["shards"]: p for p in fresh_doc.get("serve", {}).get("points", [])}
    for shards in sorted(set(base_pts) | set(fresh_pts)):
        rows.append(
            (
                f"serve/{shards}shard",
                fresh_pts.get(shards, {}).get("txns_per_sec"),
                base_pts.get(shards, {}).get("txns_per_sec"),
            )
        )
    print("\nper-scenario delta table (fresh vs baseline):")
    print(f"  {'scenario':22} {'fresh':>12} {'baseline':>12} {'delta':>8}")
    for label, got, want in rows:
        if got is None or want is None:
            present = "missing in fresh" if got is None else "missing in baseline"
            print(f"  {label:22} {'-' if got is None else f'{got:.1f}':>12} "
                  f"{'-' if want is None else f'{want:.1f}':>12} {present:>8}")
            continue
        pct = (got - want) / want * 100 if want else float("inf")
        print(f"  {label:22} {got:>12.1f} {want:>12.1f} {pct:>+7.1f}%")


def history_table(path, runs=HISTORY_RUNS):
    """Trend table over the last ``runs`` lines of the bench-history
    JSONL the bench binary appends. Purely informational: any problem
    reading the file prints a note and returns."""
    try:
        with open(path) as f:
            lines = [ln for ln in f if ln.strip()]
    except OSError as e:
        print(f"history: {e}; skipping trend table")
        return
    entries = []
    for ln in lines[-runs:]:
        try:
            entries.append(json.loads(ln))
        except json.JSONDecodeError:
            print(f"history: skipping malformed line {ln[:60]!r}")
    if not entries:
        print("history: no runs recorded yet")
        return
    scenario_names = sorted({n for e in entries for n in e.get("scenarios", {})})
    serve_keys = sorted({k for e in entries for k in e.get("serve_tps", {})})
    cols = [f"{n}/batched" for n in scenario_names]
    cols += [f"{n}/fused" for n in scenario_names]
    cols += [f"serve/{k}" for k in serve_keys]
    print(f"\nthroughput trend (last {len(entries)} run(s), oldest first, txn/s):")
    print("  " + f"{'ts':>12} {'smoke':>5} " + " ".join(f"{c:>16}" for c in cols))
    for e in entries:
        cells = []
        for n in scenario_names:
            cells.append(e.get("scenarios", {}).get(n, {}).get("batched_tps"))
        for n in scenario_names:
            cells.append(e.get("scenarios", {}).get(n, {}).get("fused_tps"))
        for k in serve_keys:
            cells.append(e.get("serve_tps", {}).get(k))
        rendered = " ".join(
            f"{'-' if v is None else f'{v:.1f}':>16}" for v in cells
        )
        print(f"  {e.get('ts', 0):>12} {str(e.get('smoke', '?')):>5} {rendered}")


def main():
    argv = sys.argv[1:]
    alloc_check = "--alloc-check" in argv
    history_path = None
    args = []
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--alloc-check":
            pass
        elif a == "--history":
            if i + 1 >= len(argv):
                sys.exit("--history requires a path argument")
            i += 1
            history_path = argv[i]
        else:
            args.append(a)
        i += 1
    if len(args) < 2:
        sys.exit(__doc__)
    fresh_path, base_path = args[0], args[1]
    min_ratio = float(args[2]) if len(args) > 2 else 0.2

    fresh_doc = load(fresh_path)
    base_doc = load(base_path)
    fresh = {s["name"]: s for s in fresh_doc["scenarios"]}
    base = {s["name"]: s for s in base_doc["scenarios"]}

    failures = throughput_ratchet(fresh, base, min_ratio)
    failures += serve_ratchet(fresh_doc, base_doc, min_ratio)
    failures += wal_ratchet(fresh_doc)
    if alloc_check:
        failures += alloc_ratchet(fresh, base)
    if history_path is not None:
        history_table(history_path)

    if failures:
        delta_table(fresh, base, fresh_doc, base_doc)
        sys.exit("throughput ratchet failed:\n  " + "\n  ".join(failures))
    print("throughput ratchet passed")


if __name__ == "__main__":
    main()

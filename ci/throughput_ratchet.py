#!/usr/bin/env python3
"""Throughput and allocation ratchet for the IVM data-plane smoke benchmark.

Compares a fresh ``BENCH_ivm.json`` smoke run against the committed smoke
baseline (``ci/bench_ivm_smoke_baseline.json``) across every scenario
(paper / scaling / wide) and every propagation mode present in both files
(per_key / batched / parallel / fused), and fails if any ``txns_per_sec``
fell below a generous fraction of the baseline. The tolerance is
deliberately loose: smoke runs last milliseconds and CI hardware differs
from the machine that recorded the baseline, so this is a guard against
order-of-magnitude regressions (e.g. reintroducing per-probe allocation
or deep-clone commits on the data plane), not a precision benchmark.

``allocs_per_txn`` is only present in runs built with the counting
allocator (``--features alloc-stats``); both files may omit it. With
``--alloc-check`` the ratchet additionally requires the fresh run's
*fused* ``allocs_per_txn`` to sit strictly below the committed *per_key*
baseline in every scenario — allocation counts are workload-determined,
not hardware-determined, so this is a tight assertion that the arena and
fused kernels actually absorb hot-path allocation.

The ``serve`` section (the multi-client sharded-scheduler benchmark) is
ratcheted the same way when both files carry it: sustained ``txns_per_sec``
at shard counts 1 and 4 must stay above the floor, and the run's
hardware-independent determinism flags (``replay_identical`` per point,
``union_matches_unsharded``) must all be true. Baselines predating the
serve benchmark are skipped rather than forcing a flag-day refresh.

Usage: throughput_ratchet.py <fresh.json> <baseline.json> [min_ratio] [--alloc-check]
"""

import json
import sys

MODES = ("per_key", "batched", "parallel", "fused")
SERVE_SHARD_FLOORS = (1, 4)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not doc.get("smoke", False):
        sys.exit(f"{path}: not a smoke run; the ratchet compares smoke against smoke")
    return doc


def throughput_ratchet(fresh, base, min_ratio):
    failures = []
    for name, b in sorted(base.items()):
        if name not in fresh:
            failures.append(f"scenario {name!r} missing from fresh run")
            continue
        for mode in MODES:
            if mode not in b or mode not in fresh[name]:
                # Older baselines predate the fused mode; skip rather
                # than force a flag-day baseline refresh.
                continue
            got = fresh[name][mode]["txns_per_sec"]
            want = b[mode]["txns_per_sec"]
            ratio = got / want if want else float("inf")
            status = "ok" if ratio >= min_ratio else "REGRESSED"
            print(
                f"{name:10} {mode:9} {got:>10.1f} txn/s  baseline {want:>10.1f}"
                f"  ratio {ratio:5.2f}  (floor {min_ratio})  {status}"
            )
            if ratio < min_ratio:
                failures.append(
                    f"scenario {name!r} mode {mode!r}: {got:.1f} txn/s is below "
                    f"{min_ratio} x baseline {want:.1f}"
                )
    return failures


def alloc_ratchet(fresh, base):
    failures = []
    for name, b in sorted(base.items()):
        if name not in fresh:
            failures.append(f"scenario {name!r} missing from fresh run")
            continue
        want = b.get("per_key", {}).get("allocs_per_txn")
        got = fresh[name].get("fused", {}).get("allocs_per_txn")
        if want is None:
            failures.append(
                f"scenario {name!r}: baseline has no per_key allocs_per_txn "
                "(refresh it from an --features alloc-stats build)"
            )
            continue
        if got is None:
            failures.append(
                f"scenario {name!r}: fresh run has no fused allocs_per_txn "
                "(was it built with --features alloc-stats?)"
            )
            continue
        status = "ok" if got < want else "REGRESSED"
        print(
            f"{name:10} fused {got:>10.1f} allocs/txn  per_key baseline "
            f"{want:>10.1f}  {status}"
        )
        if got >= want:
            failures.append(
                f"scenario {name!r}: fused {got:.1f} allocs/txn is not strictly "
                f"below the per_key baseline {want:.1f}"
            )
    return failures


def serve_ratchet(fresh_doc, base_doc, min_ratio):
    base = base_doc.get("serve")
    if base is None:
        print("serve: baseline has no serve section; skipping")
        return []
    fresh = fresh_doc.get("serve")
    if fresh is None:
        return ["fresh run has no serve section but the baseline does"]
    failures = []
    base_pts = {p["shards"]: p for p in base["points"]}
    fresh_pts = {p["shards"]: p for p in fresh["points"]}
    for shards in SERVE_SHARD_FLOORS:
        if shards not in base_pts:
            continue
        if shards not in fresh_pts:
            failures.append(f"serve point at {shards} shard(s) missing from fresh run")
            continue
        got = fresh_pts[shards]["txns_per_sec"]
        want = base_pts[shards]["txns_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= min_ratio else "REGRESSED"
        print(
            f"{'serve':10} {f'{shards}shard':9} {got:>10.1f} txn/s  baseline {want:>10.1f}"
            f"  ratio {ratio:5.2f}  (floor {min_ratio})  {status}"
        )
        if ratio < min_ratio:
            failures.append(
                f"serve at {shards} shard(s): {got:.1f} txn/s is below "
                f"{min_ratio} x baseline {want:.1f}"
            )
    # Determinism flags are workload-determined, not hardware-determined:
    # any false is a correctness regression, not noise.
    for p in fresh["points"]:
        if not p.get("replay_identical", False):
            failures.append(
                f"serve at {p['shards']} shard(s): replay_identical is false"
            )
    if not fresh.get("union_matches_unsharded", False):
        failures.append("serve: union_matches_unsharded is false")
    return failures


def main():
    args = [a for a in sys.argv[1:] if a != "--alloc-check"]
    alloc_check = "--alloc-check" in sys.argv[1:]
    if len(args) < 2:
        sys.exit(__doc__)
    fresh_path, base_path = args[0], args[1]
    min_ratio = float(args[2]) if len(args) > 2 else 0.2

    fresh_doc = load(fresh_path)
    base_doc = load(base_path)
    fresh = {s["name"]: s for s in fresh_doc["scenarios"]}
    base = {s["name"]: s for s in base_doc["scenarios"]}

    failures = throughput_ratchet(fresh, base, min_ratio)
    failures += serve_ratchet(fresh_doc, base_doc, min_ratio)
    if alloc_check:
        failures += alloc_ratchet(fresh, base)

    if failures:
        sys.exit("throughput ratchet failed:\n  " + "\n  ".join(failures))
    print("throughput ratchet passed")


if __name__ == "__main__":
    main()

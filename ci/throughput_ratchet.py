#!/usr/bin/env python3
"""Throughput ratchet for the IVM data-plane smoke benchmark.

Compares a fresh ``BENCH_ivm.json`` smoke run against the committed
smoke baseline (``ci/bench_ivm_smoke_baseline.json``) and fails if any
scenario's batched-mode ``txns_per_sec`` fell below a generous fraction
of the baseline. The tolerance is deliberately loose: smoke runs last
milliseconds and CI hardware differs from the machine that recorded the
baseline, so this is a guard against order-of-magnitude regressions
(e.g. reintroducing per-probe allocation or deep-clone commits on the
data plane), not a precision benchmark.

Usage: throughput_ratchet.py <fresh.json> <baseline.json> [min_ratio]
"""

import json
import sys


def scenarios(path):
    with open(path) as f:
        doc = json.load(f)
    if not doc.get("smoke", False):
        sys.exit(f"{path}: not a smoke run; the ratchet compares smoke against smoke")
    return {s["name"]: s for s in doc["scenarios"]}


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    fresh_path, base_path = sys.argv[1], sys.argv[2]
    min_ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 0.2

    fresh = scenarios(fresh_path)
    base = scenarios(base_path)

    failures = []
    for name, b in sorted(base.items()):
        if name not in fresh:
            failures.append(f"scenario {name!r} missing from fresh run")
            continue
        got = fresh[name]["batched"]["txns_per_sec"]
        want = b["batched"]["txns_per_sec"]
        ratio = got / want if want else float("inf")
        status = "ok" if ratio >= min_ratio else "REGRESSED"
        print(
            f"{name:10} batched {got:>10.1f} txn/s  baseline {want:>10.1f}"
            f"  ratio {ratio:5.2f}  (floor {min_ratio})  {status}"
        )
        if ratio < min_ratio:
            failures.append(
                f"scenario {name!r}: batched {got:.1f} txn/s is below "
                f"{min_ratio} x baseline {want:.1f}"
            )

    if failures:
        sys.exit("throughput ratchet failed:\n  " + "\n  ".join(failures))
    print("throughput ratchet passed")


if __name__ == "__main__":
    main()

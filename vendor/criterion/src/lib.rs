//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of criterion's API its benches use:
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed for `sample_size` samples (time-capped), and the mean / min
//! per-iteration wall-clock times are printed. No plots, no statistics
//! beyond that — enough to track perf trajectory across PRs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the
/// stand-in always runs one input per measured batch).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark, e.g. `BenchmarkId::new("opt", 4)`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

#[doc(hidden)]
pub trait IntoBenchName {
    fn into_bench_name(self) -> String;
}

impl IntoBenchName for BenchmarkId {
    fn into_bench_name(self) -> String {
        self.full
    }
}

impl IntoBenchName for &str {
    fn into_bench_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchName for String {
    fn into_bench_name(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last measurement, if any.
    last_mean: Option<Duration>,
    last_min: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last_mean: None,
            last_min: None,
        }
    }

    /// Time `routine` repeatedly and record mean/min per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that takes ≥ ~1ms,
        // so per-sample timer overhead is negligible for fast routines.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }

        let budget = Duration::from_millis(600);
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters_total = 0u64;
        for done in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let sample = t0.elapsed();
            total += sample;
            min = min.min(sample / iters_per_sample as u32);
            iters_total += iters_per_sample;
            if started.elapsed() > budget && done >= 2 {
                break;
            }
        }
        self.last_mean = Some(total / iters_total.max(1) as u32);
        self.last_min = Some(min);
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = Duration::from_millis(600);
        let started = Instant::now();
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut count = 0u32;
        for done in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let sample = t0.elapsed();
            total += sample;
            min = min.min(sample);
            count += 1;
            if started.elapsed() > budget && done >= 2 {
                break;
            }
        }
        self.last_mean = Some(total / count.max(1));
        self.last_min = Some(min);
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples);
    f(&mut b);
    match (b.last_mean, b.last_min) {
        (Some(mean), Some(min)) => {
            println!("bench {name:<56} mean {mean:>12.3?}   min {min:>12.3?}");
        }
        _ => println!("bench {name:<56} (no measurement)"),
    }
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<N, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        N: IntoBenchName,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_name());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<N, I, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchName,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_bench_name());
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declare a benchmark group runner (subset of criterion's macro: the
/// configuration form `criterion_group!{name = ...; config = ...}` is not
/// supported).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}

//! `any::<T>()` support for the proptest stand-in.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{0}')
    }
}

/// Full-domain strategy for `T` (`any::<u8>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

//! Deterministic RNG and run configuration for the proptest stand-in.

/// FNV-1a hash of a string, used to derive a per-test base seed from the
/// test's module path + name so every test explores a distinct but stable
/// input sequence.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 generator used to drive strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform u64 in [0, n). Panics if n == 0.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

//! The `Strategy` trait and core combinators for the proptest stand-in.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of one type. Unlike real proptest there is
/// no value tree / shrinking; a strategy just samples.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map sampled values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erase for storage in heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as regex-subset string strategies, e.g. `".{0,80}"`.
///
/// Supported syntax: literal characters, `.` (any printable char), character
/// classes `[a-z0-9_]` (ranges and singletons, no negation), escapes
/// (`\n`, `\t`, `\\`, `\.` ...), and the quantifiers `*` (0..=8), `+`
/// (1..=8), `?`, `{n}`, `{m,n}` applied to the preceding atom.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex_subset(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = if lo == hi {
                *lo
            } else {
                *lo + rng.below((hi - lo + 1) as u64) as usize
            };
            for _ in 0..n {
                out.push(atom.sample_char(rng));
            }
        }
        out
    }
}

enum Atom {
    Literal(char),
    Any,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample_char(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Any => {
                // Mostly printable ASCII, occasionally multibyte to exercise
                // UTF-8 handling in parsers under test.
                const EXOTIC: &[char] = &['é', 'λ', '中', '\u{0}', '\n', '\t', '\u{7f}', '😀'];
                if rng.below(8) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    (0x20 + rng.below(0x5f) as u8) as char
                }
            }
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
            }
        }
    }
}

/// Parse the supported regex subset into (atom, min_reps, max_reps) triples.
fn parse_regex_subset(pat: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pat.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                Atom::Literal(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                })
            }
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars.next().expect("dangling escape in class"),
                        Some(ch) => ch,
                        None => panic!("unterminated character class in pattern"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next() {
                            Some(']') | None => panic!("unterminated range in class"),
                            Some(ch) => ch,
                        };
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in pattern");
                Atom::Class(ranges)
            }
            other => Atom::Literal(other),
        };
        let (lo, hi) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut first = String::new();
                let mut second = None;
                for ch in chars.by_ref() {
                    match ch {
                        '}' => break,
                        ',' => second = Some(String::new()),
                        d => match &mut second {
                            Some(s) => s.push(d),
                            None => first.push(d),
                        },
                    }
                }
                let m: usize = first.parse().expect("bad {m,n} quantifier");
                let n = match second {
                    Some(s) if s.is_empty() => m + 8,
                    Some(s) => s.parse().expect("bad {m,n} quantifier"),
                    None => m,
                };
                (m, n)
            }
            _ => (1, 1),
        };
        out.push((atom, lo, hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let x = (0i64..6).sample(&mut rng);
            assert!((0..6).contains(&x));
            let y = (0u32..256).sample(&mut rng);
            assert!(y < 256);
            let f = (0.0f64..1e7).sample(&mut rng);
            assert!((0.0..1e7).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_lengths() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = ".{0,80}".sample(&mut rng);
            assert!(s.chars().count() <= 80);
        }
        for _ in 0..50 {
            let s = "[a-z]{3}".sample(&mut rng);
            assert_eq!(s.chars().count(), 3);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        assert_eq!("ab\\.c".sample(&mut rng), "ab.c");
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (0i64..5, 0i64..5).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((0..9).contains(&v));
        }
    }
}

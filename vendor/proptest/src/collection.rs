//! Collection strategies for the proptest stand-in (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec` strategy with lengths drawn from `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let len = self.size.lo + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0i64..6, 0..12);
        let mut rng = TestRng::new(9);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 12);
            assert!(v.iter().all(|x| (0..6).contains(x)));
            lens.insert(v.len());
        }
        assert!(lens.len() > 5, "should explore many lengths: {lens:?}");
    }
}

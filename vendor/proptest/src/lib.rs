//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of proptest's API its tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `Just` / `any` /
//! `prop_oneof!` / `prop::collection::vec` strategies, a tiny regex-subset
//! string strategy, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with its inputs via the assert
//!   message; reproduction is deterministic (case seeds derive from the test's
//!   module path and name), so a failure reproduces exactly on re-run.
//! - Sampling is plain pseudo-random rather than bias-annealed.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirrors proptest's `prop` facade module (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property-test entry point. Accepts an optional
/// `#![proptest_config(ProptestConfig { ... })]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

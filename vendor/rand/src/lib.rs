//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `rand` 0.8 API it actually uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! and float ranges. The generator is SplitMix64 — deterministic for a given
//! seed, statistically fine for workload generation, and explicitly **not**
//! cryptographic.

use std::ops::Range;

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range. Panics on an empty range,
    /// matching the real crate's contract.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be drawn uniformly from a `Range` by mapping one u64 draw.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(raw: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (raw as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(raw: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Namespacing module mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..13);
            assert!(x < 13);
            let y: i32 = rng.gen_range(50..200);
            assert!((50..200).contains(&y));
            let z: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}

//! # spacetime
//!
//! A from-scratch Rust implementation of Ross, Srivastava & Sudarshan,
//! *"Materialized View Maintenance and Integrity Constraint Checking:
//! Trading Space for Time"* (SIGMOD 1996).
//!
//! Given a materialized view `V` and a workload of update transaction
//! types, the library determines which **additional** sub-views to
//! materialize (and maintain) so that the total, workload-weighted cost of
//! incrementally maintaining `V` is minimized — trading space (extra
//! materializations) for time (cheaper maintenance). The same machinery
//! checks SQL-92 assertions (complex integrity constraints) incrementally,
//! by modeling an assertion as a view required to be empty.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — bag relations, hash indices, page-I/O metering, catalog.
//! * [`algebra`] — relational algebra trees and their executor.
//! * [`delta`] — incremental (delta) propagation rules per operator.
//! * [`memo`] — the Volcano-style expression DAG and equivalence rules.
//! * [`cost`] — monotonic cost models and the §3.6 page-I/O cost model.
//! * [`optimizer`] — the paper's contribution: `OptimalViewSet`, the
//!   Shielding Principle, and the §5 heuristics.
//! * [`ivm`] — the runtime maintenance engine, assertions, and the
//!   `Database` session API.
//! * [`sql`] — a SQL subset front end.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use spacetime::ivm::Database;
//!
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE Emp (EName VARCHAR, DName VARCHAR, Salary INTEGER)").unwrap();
//! db.execute_sql("CREATE TABLE Dept (DName VARCHAR PRIMARY KEY, MName VARCHAR, Budget INTEGER)").unwrap();
//! db.execute_sql(
//!     "CREATE MATERIALIZED VIEW ProblemDept (DName) AS \
//!      SELECT Dept.DName FROM Emp, Dept WHERE Dept.DName = Emp.DName \
//!      GROUP BY Dept.DName, Budget HAVING SUM(Salary) > Budget",
//! ).unwrap();
//! ```

pub use spacetime_algebra as algebra;
pub use spacetime_cost as cost;
pub use spacetime_delta as delta;
pub use spacetime_ivm as ivm;
pub use spacetime_memo as memo;
pub use spacetime_obs as obs;
pub use spacetime_optimizer as optimizer;
pub use spacetime_sql as sql;
pub use spacetime_storage as storage;
